//! Robustness tests for the deadline-aware, backpressured serving path:
//! a depth-limited queue under saturation must answer every request with
//! a typed result (`Ok`, `Overloaded`, `DeadlineExceeded`) — no hangs, no
//! panics, no silent drops — and shutdown must drain in-flight work.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use hpcnet_nn::{Mlp, Topology};
use hpcnet_runtime::{ModelBundle, Orchestrator, QualityGuard, RuntimeError, TensorStore};
use hpcnet_tensor::rng::{seeded, uniform_vec};

fn bundle(seed: u64) -> ModelBundle {
    let mlp = Mlp::new(&Topology::mlp(vec![3, 4, 2]), &mut seeded(seed, "robust")).unwrap();
    ModelBundle {
        surrogate: mlp.into(),
        autoencoder: None,
        scaler: None,
        output_scaler: None,
    }
}

/// An orchestrator serving one model named `slow` whose quality validator
/// sleeps for `delay` per answer — a stand-in for expensive inference
/// that keeps the worker pool busy deterministically.
fn slow_orchestrator(workers: usize, queue_depth: usize, delay: Duration) -> Orchestrator {
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(workers)
        .queue_depth(queue_depth)
        .build();
    orc.register_guarded_model(
        "slow",
        bundle(1),
        QualityGuard::new(move |_, _| {
            std::thread::sleep(delay);
            true
        }),
    );
    orc
}

/// The ISSUE acceptance scenario: many clients against one slow worker
/// and a depth-2 queue. Every reply must be one of the three typed
/// outcomes, and the orchestrator's counters must account for each.
#[test]
fn saturated_queue_yields_only_typed_results() {
    const THREADS: usize = 6;
    const REQUESTS: usize = 30;
    let orc = slow_orchestrator(1, 2, Duration::from_millis(5));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let client = orc.client();
            std::thread::spawn(move || {
                let mut rng = seeded(t as u64, "robust-sat");
                let (mut ok, mut over, mut dead) = (0u64, 0u64, 0u64);
                for r in 0..REQUESTS {
                    let x = uniform_vec(&mut rng, 3, -1.0, 1.0);
                    let in_key = format!("t{t}r{r}in");
                    let out_key = format!("t{t}r{r}out");
                    client.put_tensor(&in_key, &x).unwrap();
                    match client.run_model_with_deadline(
                        "slow",
                        &in_key,
                        &out_key,
                        Duration::from_millis(25),
                    ) {
                        Ok(()) => ok += 1,
                        Err(RuntimeError::Overloaded { queue_depth }) => {
                            assert_eq!(queue_depth, 2);
                            over += 1;
                        }
                        Err(RuntimeError::DeadlineExceeded) => dead += 1,
                        Err(e) => panic!("untyped failure under saturation: {e:?}"),
                    }
                }
                (ok, over, dead)
            })
        })
        .collect();

    let (mut ok, mut over, mut dead) = (0u64, 0u64, 0u64);
    for h in handles {
        let (o, v, d) = h.join().expect("no client thread may panic");
        ok += o;
        over += v;
        dead += d;
    }
    assert_eq!(ok + over + dead, (THREADS * REQUESTS) as u64);
    assert!(
        over + dead > 0,
        "a depth-2 queue behind one slow worker must shed load"
    );

    // The telemetry registry must show the same story: executed requests
    // accumulated non-zero queue-wait and infer-stage time, and the shed
    // load left anomaly events in the ring.
    let snap = orc.metrics_snapshot();
    let queue_wait = snap
        .find_histogram("hpcnet_serving_queue_wait_seconds", &[("model", "slow")])
        .expect("queue-wait histogram is registered for the served model");
    assert!(queue_wait.count > 0, "executed requests record queue wait");
    assert!(
        queue_wait.sum > 0,
        "a saturated single-worker queue implies non-zero waiting"
    );
    let infer = snap
        .find_histogram(
            "hpcnet_serving_stage_seconds",
            &[("model", "slow"), ("stage", "infer")],
        )
        .expect("infer-stage histogram is registered for the served model");
    assert!(infer.count > 0, "every executed group times its inference");
    assert!(infer.sum > 0, "inference takes measurable time");
    if over > 0 {
        assert!(
            !snap.events_of_kind("overload_rejected").is_empty(),
            "overload rejections must land in the event ring"
        );
    }
    if dead > 0 {
        assert!(
            !snap.events_of_kind("deadline_expired").is_empty(),
            "deadline expiries must land in the event ring"
        );
    }

    let stats = orc.shutdown();
    assert_eq!(stats.overload_rejected, over);
    assert_eq!(stats.deadline_expired, dead);
    // Executed requests are exactly the Ok ones: the validator accepts
    // everything, rejected/expired requests never reach a worker.
    assert_eq!(stats.requests, ok);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.quality_hits, ok);
}

/// Backpressure at the exact queue limit: with one request in flight and
/// one occupying the single queue slot, the next admission attempt gets
/// `Overloaded { queue_depth }` immediately — and once the backlog
/// clears, the same client is served again.
#[test]
fn overloaded_at_exact_queue_limit_then_recovers() {
    let orc = slow_orchestrator(1, 1, Duration::from_millis(300));

    let a = orc.client();
    a.put_tensor("a_in", &[0.1, 0.2, 0.3]).unwrap();
    let a_thread = std::thread::spawn(move || a.run_model("slow", "a_in", "a_out"));
    std::thread::sleep(Duration::from_millis(100)); // A is in flight

    let b = orc.client();
    b.put_tensor("b_in", &[0.4, 0.5, 0.6]).unwrap();
    let b_thread = std::thread::spawn(move || b.run_model("slow", "b_in", "b_out"));
    std::thread::sleep(Duration::from_millis(100)); // B fills the queue

    let c = orc.client();
    c.put_tensor("c_in", &[0.7, 0.8, 0.9]).unwrap();
    assert_eq!(
        c.run_model("slow", "c_in", "c_out"),
        Err(RuntimeError::Overloaded { queue_depth: 1 })
    );
    assert!(c.is_admitting(), "overload is transient, not a shutdown");

    assert_eq!(a_thread.join().unwrap(), Ok(()));
    assert_eq!(b_thread.join().unwrap(), Ok(()));

    // The backlog is gone: the previously rejected work now succeeds.
    c.run_model("slow", "c_in", "c_out").unwrap();
    assert_eq!(c.unpack_tensor("c_out").unwrap().len(), 2);

    let stats = orc.shutdown();
    assert_eq!(stats.overload_rejected, 1);
    assert_eq!(stats.requests, 3);
}

/// Deadline expiry under a saturated worker: a request whose deadline
/// passes while it waits in the queue is failed server-side with
/// `DeadlineExceeded` before any inference is spent on it, and no output
/// tensor is ever written for it.
#[test]
fn queued_request_expires_server_side() {
    let orc = slow_orchestrator(1, 8, Duration::from_millis(300));

    let a = orc.client();
    a.put_tensor("a_in", &[1.0, 2.0, 3.0]).unwrap();
    let a_thread = std::thread::spawn(move || a.run_model("slow", "a_in", "a_out"));
    std::thread::sleep(Duration::from_millis(100)); // A is in flight

    // B's 50 ms budget elapses while A still holds the only worker.
    let b = orc.client();
    b.put_tensor("b_in", &[4.0, 5.0, 6.0]).unwrap();
    assert_eq!(
        b.run_model_with_deadline("slow", "b_in", "b_out", Duration::from_millis(50)),
        Err(RuntimeError::DeadlineExceeded)
    );
    assert!(
        matches!(
            b.unpack_tensor("b_out"),
            Err(RuntimeError::MissingTensor(_))
        ),
        "an expired request must not write an output"
    );

    assert_eq!(a_thread.join().unwrap(), Ok(()));
    let stats = orc.shutdown();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.requests, 1);
}

/// Graceful drain: shutdown lets admitted requests finish (their outputs
/// are present and intact), answers raced-in requests with
/// `ShuttingDown`, and leaves every client with a typed refusal
/// afterwards.
#[test]
fn shutdown_drains_in_flight_requests() {
    let orc = slow_orchestrator(1, 16, Duration::from_millis(50));
    let after = orc.client();

    let handles: Vec<_> = (0..4)
        .map(|t| {
            let client = orc.client();
            std::thread::spawn(move || {
                let in_key = format!("d{t}in");
                let out_key = format!("d{t}out");
                let result = client
                    .put_tensor(&in_key, &[t as f64, 0.5, -0.5])
                    .and_then(|()| client.run_model("slow", &in_key, &out_key));
                (out_key, result, client)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(75)); // at least one in flight
    let stats = orc.shutdown();

    let mut served = 0u64;
    for h in handles {
        let (out_key, result, client) = h.join().expect("no hang, no panic");
        match result {
            Ok(()) => {
                assert_eq!(
                    client.unpack_tensor(&out_key).unwrap().len(),
                    2,
                    "drained request must leave its output behind"
                );
                served += 1;
            }
            Err(RuntimeError::ShuttingDown) => {}
            Err(e) => panic!("drain produced an untyped result: {e:?}"),
        }
    }
    assert!(served >= 1, "the in-flight request must complete");
    assert_eq!(stats.requests, served);

    // After the drain every path refuses with the typed shutdown error.
    assert!(!after.is_admitting());
    assert_eq!(
        after.put_tensor("late_in", &[1.0]),
        Err(RuntimeError::ShuttingDown)
    );
    assert_eq!(
        after.run_model("slow", "late_in", "late_out"),
        Err(RuntimeError::ShuttingDown)
    );
}

/// Server-side restart-on-quality-miss: a reject-all validator routes
/// every answer through the fallback closure, whose output must reach the
/// client bit-for-bit, with the events visible in `ServingStats`.
#[test]
fn server_side_fallback_bit_matches_the_original_region() {
    let orc = Orchestrator::builder().store(TensorStore::new()).build();
    let original_region = |raw: &[f64]| -> Vec<f64> { raw.iter().map(|v| v * 2.0 + 1.0).collect() };
    orc.register_guarded_model(
        "guarded",
        bundle(7),
        QualityGuard::new(|_, _| false).with_fallback(move |raw| original_region(raw)),
    );

    let client = orc.client();
    let x = [0.25, -1.5, 3.125];
    client.put_tensor("g_in", &x).unwrap();
    client.run_model("guarded", "g_in", "g_out").unwrap();
    assert_eq!(
        client.unpack_tensor("g_out").unwrap(),
        x.iter().map(|v| v * 2.0 + 1.0).collect::<Vec<f64>>(),
        "the served answer must be the fallback's output, bit-for-bit"
    );

    let stats = orc.serving_stats();
    assert_eq!(stats.quality_fallbacks, 1);
    assert_eq!(stats.quality_hits, 0);
    assert_eq!(stats.quality_rejected, 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.quality_hit_rate(), 0.0);

    // The fallback is also an anomaly event: the ring names the model,
    // the input key, and the surrogate output the guard threw away.
    let snap = orc.metrics_snapshot();
    let events = snap.events_of_kind("quality_fallback");
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].label, "guarded");
    assert_eq!(events[0].message, "g_in");
    assert!(events[0].value.is_finite());
}

/// A panicking quality validator must be contained to the offending
/// request: the client gets a typed `Inference` error naming the panic,
/// the worker thread survives, and the same (single) worker then serves
/// a clean request.
#[test]
fn panicking_validator_is_contained_to_its_request() {
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .build();
    orc.register_guarded_model(
        "guarded",
        bundle(11),
        QualityGuard::new(|raw, _| {
            if raw.first().copied().unwrap_or(0.0) > 0.0 {
                panic!("validator blew up");
            }
            true
        }),
    );

    let client = orc.client();
    client.put_tensor("bad_in", &[1.0, 0.0, 0.0]).unwrap();
    let err = client
        .run_model("guarded", "bad_in", "bad_out")
        .expect_err("panicking validator must fail the request");
    match &err {
        RuntimeError::Inference(msg) => {
            assert!(
                msg.contains("panick") && msg.contains("bad_in"),
                "error must name the panic and the input key: {msg}"
            );
        }
        other => panic!("expected Inference, got {other:?}"),
    }
    assert!(
        client.unpack_tensor("bad_out").is_err(),
        "a failed request must not leave a partial output tensor"
    );

    // Same single worker: if the panic had killed it, this would hang.
    client.put_tensor("ok_in", &[-1.0, 0.0, 0.0]).unwrap();
    client.run_model("guarded", "ok_in", "ok_out").unwrap();
    assert_eq!(client.unpack_tensor("ok_out").unwrap().len(), 2);

    let stats = orc.serving_stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 1);
    assert_eq!(
        stats.quality_rejected, 0,
        "a panicking validator is an error, not a quality verdict"
    );
}

/// Same containment for a panicking fallback region; afterwards the
/// guard can be replaced and the model keeps serving.
#[test]
fn panicking_fallback_is_contained_and_guard_is_replaceable() {
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .build();
    orc.register_guarded_model(
        "guarded",
        bundle(12),
        QualityGuard::new(|_, _| false).with_fallback(|_| panic!("fallback blew up")),
    );

    let client = orc.client();
    client.put_tensor("in", &[0.5, 0.5, 0.5]).unwrap();
    let err = client
        .run_model("guarded", "in", "out")
        .expect_err("panicking fallback must fail the request");
    assert!(
        matches!(&err, RuntimeError::Inference(msg) if msg.contains("fallback") && msg.contains("panick")),
        "expected a typed fallback-panic error, got {err:?}"
    );
    assert_eq!(orc.serving_stats().quality_fallbacks, 0);

    // The worker survived; an accepting guard serves the same input.
    orc.set_quality_guard("guarded", QualityGuard::new(|_, _| true))
        .unwrap();
    client.run_model("guarded", "in", "out").unwrap();
    assert_eq!(client.unpack_tensor("out").unwrap().len(), 2);

    let stats = orc.serving_stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.quality_hits, 1);
}

/// A panic anywhere in a worker round (here: a validator that panics for
/// every member of a coalesced batch) must answer every queued request
/// with a typed error rather than stranding the batch.
#[test]
fn panicking_batch_answers_every_request() {
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .build();
    orc.register_guarded_model(
        "guarded",
        bundle(13),
        QualityGuard::new(|_, _| panic!("always panics")),
    );
    let client = orc.client();
    let pairs: Vec<(String, String)> = (0..4)
        .map(|i| {
            let in_key = format!("b{i}in");
            client.put_tensor(&in_key, &[i as f64, 0.0, 0.0]).unwrap();
            (in_key, format!("b{i}out"))
        })
        .collect();
    let pair_refs: Vec<(&str, &str)> = pairs
        .iter()
        .map(|(i, o)| (i.as_str(), o.as_str()))
        .collect();
    // The batch API surfaces the first per-pair error; the stats below
    // prove every member was answered with one (nothing stranded).
    let err = client
        .run_model_batch("guarded", &pair_refs)
        .expect_err("a fully panicking batch must fail");
    assert!(
        matches!(&err, RuntimeError::Inference(msg) if msg.contains("panick")),
        "expected a typed panic error, got {err:?}"
    );
    for (_, out_key) in &pairs {
        assert!(
            client.unpack_tensor(out_key).is_err(),
            "no failed member may leave an output tensor"
        );
    }
    let stats = orc.serving_stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.errors, 4);
}

/// Opt-in `f32` serving without a guard: the quantized kernels answer
/// directly, the answer tracks the `f64` path within the quantization
/// envelope, and the `f32_served` counter accounts for every request.
#[test]
fn f32_serving_tracks_f64_within_envelope_and_counts() {
    let b = bundle(20);
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .serve_f32(true)
        .build();
    assert!(orc.serves_f32());
    orc.register_model("q", b.clone());

    let client = orc.client();
    let x = [0.25, -0.75, 1.5];
    client.put_tensor("in", &x).unwrap();
    client.run_model("q", "in", "out").unwrap();
    let out = client.unpack_tensor("out").unwrap();
    let y64 = b.surrogate.predict(&x).unwrap();
    assert_eq!(out.len(), y64.len());
    for (a, b) in y64.iter().zip(&out) {
        assert!(
            (a - b).abs() <= 1e-4 * (1.0 + a.abs()),
            "f32 answer outside quantization envelope: f64={a} f32={b}"
        );
    }

    let stats = orc.serving_stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.f32_served, 1);
    assert_eq!(stats.f32_fallbacks, 0);

    // The f32 forward is carved into its own telemetry stage.
    let snap = orc.metrics_snapshot();
    let h = snap
        .find_histogram(
            "hpcnet_serving_stage_seconds",
            &[("model", "q"), ("stage", "infer_f32")],
        )
        .expect("infer_f32 stage histogram is registered");
    assert!(h.count >= 1, "f32 batches charge the infer_f32 stage");
}

/// The DESIGN.md §14 demotion contract: a QualityGuard that accepts only
/// the bit-exact `f64` answer rejects the quantized output, the request
/// is recomputed through the `f64` surrogate (not the region fallback),
/// the client receives the `f64` answer bit-for-bit, and the counters
/// attribute the miss to `f32_fallbacks` — not `quality_fallbacks`.
#[test]
fn f32_quality_miss_demotes_to_f64_and_charges_counters() {
    let b = bundle(21);
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .serve_f32(true)
        .build();
    // No scaler in the bundle, so the validator's raw input is exactly
    // the feature row the surrogate consumes: "only the bit-exact f64
    // prediction passes" is expressible directly.
    let exact = b.surrogate.clone();
    orc.register_guarded_model(
        "m",
        b.clone(),
        QualityGuard::new(move |raw, y| exact.predict(raw).as_deref() == Ok(y))
            .with_fallback(|_| panic!("demotion must answer before the region fallback")),
    );

    let client = orc.client();
    let x = [0.5, -0.25, 0.125];
    client.put_tensor("in", &x).unwrap();
    client.run_model("m", "in", "out").unwrap();
    assert_eq!(
        client.unpack_tensor("out").unwrap(),
        b.surrogate.predict(&x).unwrap(),
        "the demoted answer must be the f64 surrogate's, bit-for-bit"
    );

    let stats = orc.serving_stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.f32_fallbacks, 1, "the miss is a precision fallback");
    assert_eq!(stats.f32_served, 0, "a demoted request was not f32-served");
    assert_eq!(stats.quality_hits, 1, "the f64 recompute passed the guard");
    assert_eq!(
        stats.quality_fallbacks, 0,
        "the region fallback must not have run"
    );
    assert_eq!(stats.quality_rejected, 0);

    // The demotion is visible in the anomaly ring.
    let snap = orc.metrics_snapshot();
    let events = snap.events_of_kind("f32_demoted");
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].label, "m");
    assert_eq!(events[0].message, "in");
}

/// When both precisions miss, the established guard semantics resume on
/// the `f64` answer: the region fallback serves the request, and both
/// the precision and the quality fallback are counted once each.
#[test]
fn f32_and_f64_misses_fall_back_to_the_region() {
    let b = bundle(22);
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .serve_f32(true)
        .build();
    orc.register_guarded_model(
        "m",
        b,
        QualityGuard::new(|_, _| false).with_fallback(|raw| raw.iter().map(|v| v + 10.0).collect()),
    );

    let client = orc.client();
    let x = [1.0, 2.0, 3.0];
    client.put_tensor("in", &x).unwrap();
    client.run_model("m", "in", "out").unwrap();
    assert_eq!(
        client.unpack_tensor("out").unwrap(),
        vec![11.0, 12.0, 13.0],
        "a double miss must be answered by the original region"
    );

    let stats = orc.serving_stats();
    assert_eq!(stats.f32_fallbacks, 1);
    assert_eq!(stats.quality_fallbacks, 1);
    assert_eq!(stats.f32_served, 0);
    assert_eq!(stats.quality_hits, 0);
    assert_eq!(stats.errors, 0);
}
