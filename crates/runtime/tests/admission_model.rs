//! Model-checked admission-queue depth accounting.
//!
//! The orchestrator bounds its queue with a CAS loop over an atomic depth
//! counter (admit = compare-exchange up, complete = fetch-sub down). This
//! harness re-states that protocol against the same two-harness setup as
//! `hpcnet-telemetry/tests/concurrency_model.rs`: the seeded stress shim
//! under plain `cargo test`, the real `loom` model checker under
//! `RUSTFLAGS="--cfg loom"` (the CI `loom` job).
//!
//! Invariants proved: the observed depth never exceeds the bound, every
//! attempt is either admitted or rejected (none double-counted or lost),
//! and the queue drains to exactly zero once every admitted request
//! completes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

#[cfg(loom)]
use loom::{
    model,
    sync::atomic::{AtomicU64, Ordering},
    sync::Arc,
    thread,
};

#[cfg(not(loom))]
use hpcnet_modelcheck::{
    model,
    sync::atomic::{AtomicU64, Ordering},
    sync::Arc,
    thread,
};

/// The admission protocol under test, isolated from the channel plumbing:
/// a CAS-bounded depth counter with exact admitted/rejected/completed
/// tallies. Mirrors the orchestrator's bounded-queue accounting.
struct Admission {
    depth: AtomicU64,
    bound: u64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
}

impl Admission {
    fn new(bound: u64) -> Self {
        Admission {
            depth: AtomicU64::new(0),
            bound,
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        }
    }

    /// Try to take one queue slot. The CAS loop means two racing admits
    /// can never both squeeze into the last slot.
    fn try_admit(&self) -> bool {
        // relaxed: optimistic first read; the CAS below re-validates.
        let mut cur = self.depth.load(Ordering::Relaxed);
        loop {
            if cur >= self.bound {
                // relaxed: pure tally, read only after all threads join.
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.depth.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // relaxed: pure tally, read only after join.
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Release the slot taken by a successful `try_admit`.
    fn complete(&self) {
        // relaxed: pure tally, read only after join.
        self.completed.fetch_add(1, Ordering::Relaxed);
        // Release pairs with the Acquire CAS in `try_admit`: an admit that
        // reuses this slot observes the completed request's effects.
        let prev = self.depth.fetch_sub(1, Ordering::Release);
        assert!(prev >= 1, "queue depth underflow");
    }
}

#[test]
fn admission_depth_never_exceeds_bound() {
    model(|| {
        let adm = Arc::new(Admission::new(1));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let adm = adm.clone();
                thread::spawn(move || {
                    for _ in 0..2 {
                        // relaxed: advisory read for the assertion only.
                        let seen = adm.depth.load(Ordering::Relaxed);
                        assert!(seen <= adm.bound, "depth {seen} above bound");
                        if adm.try_admit() {
                            adm.complete();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("admission thread");
        }
        let admitted = adm.admitted.load(Ordering::Relaxed);
        let rejected = adm.rejected.load(Ordering::Relaxed);
        let completed = adm.completed.load(Ordering::Relaxed);
        assert_eq!(
            admitted + rejected,
            4,
            "every attempt is admitted or rejected, exactly once"
        );
        assert_eq!(completed, admitted, "every admit completes");
        assert_eq!(adm.depth.load(Ordering::Relaxed), 0, "queue drains to zero");
    });
}

#[test]
fn full_queue_rejects_rather_than_overshoots() {
    model(|| {
        let adm = Arc::new(Admission::new(1));
        assert!(adm.try_admit(), "empty queue admits");
        let racer = {
            let adm = adm.clone();
            thread::spawn(move || adm.try_admit())
        };
        let raced = racer.join().expect("racing admit");
        if raced {
            // The racer can only have won a slot the holder released —
            // impossible here: the holder never completes before the join.
            panic!("second admit fit into a full depth-1 queue");
        }
        assert_eq!(adm.depth.load(Ordering::Relaxed), 1);
        adm.complete();
        assert_eq!(adm.depth.load(Ordering::Relaxed), 0);
        assert!(adm.try_admit(), "released slot is reusable");
    });
}
