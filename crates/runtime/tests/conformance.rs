//! The in-process [`hpcnet_runtime::Client`] is the reference transport:
//! run the shared [`hpcnet_runtime::conformance`] suite against it, plus
//! the saturated-server overload pin. `hpcnet-net` and `hpcnet-cluster`
//! run the identical suite against their transports.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use hpcnet_nn::{Mlp, SurrogateNet, Topology};
use hpcnet_runtime::conformance::{check_overload, Conformance};
use hpcnet_runtime::{ModelBundle, Orchestrator, QualityGuard, TensorStore};

const MODEL: &str = "conf-net";
const DIM: usize = 6;

/// The same deterministic bundle on every call, so the suite's reference
/// closure and the serving side share identical weights.
fn bundle() -> ModelBundle {
    let mut rng = hpcnet_tensor::rng::seeded(0xC0_4F, "conformance model");
    ModelBundle {
        surrogate: SurrogateNet::Mlp(
            Mlp::new(&Topology::mlp(vec![DIM, 10, 3]), &mut rng).expect("valid topology"),
        ),
        autoencoder: None,
        scaler: None,
        output_scaler: None,
    }
}

#[test]
fn in_process_client_passes_the_shared_suite() {
    let orc = Orchestrator::builder().store(TensorStore::new()).build();
    orc.register_model(MODEL, bundle());
    let reference = bundle();
    let predict = move |x: &[f64]| reference.surrogate.predict(x).expect("predict");
    Conformance::new(MODEL, DIM, &predict)
        .key_prefix("inproc")
        .check(&orc.client());
    orc.shutdown();
}

#[test]
fn in_process_client_surfaces_typed_overload() {
    // One worker, a queue of one, and a stalling validator: the canonical
    // saturation setup the helper documents.
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .queue_depth(1)
        .build();
    orc.register_guarded_model(
        MODEL,
        bundle(),
        QualityGuard::new(|_in, _out| {
            std::thread::sleep(Duration::from_millis(400));
            true
        }),
    );
    check_overload(|| orc.client(), MODEL, DIM);
    orc.shutdown();
}
