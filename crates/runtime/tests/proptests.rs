//! Property-based tests for the runtime: store semantics under arbitrary
//! operation sequences and bundle-serialization fidelity for random
//! networks.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use hpcnet_nn::{Activation, Mlp, Topology};
use hpcnet_runtime::{ModelBundle, Orchestrator, TensorStore};
use hpcnet_tensor::rng::{seeded, uniform_vec};
use proptest::prelude::*;

/// One store operation.
#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<f64>),
    Delete(u8),
    Get(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, prop::collection::vec(-10.0f64..10.0, 1..8)).prop_map(|(k, v)| Op::Put(k, v)),
        (0u8..6).prop_map(Op::Delete),
        (0u8..6).prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store behaves like a HashMap under any operation sequence.
    #[test]
    fn store_matches_hashmap_model(ops in prop::collection::vec(op_strategy(), 0..60)) {
        use std::collections::HashMap;
        let store = TensorStore::new();
        let mut model: HashMap<u8, Vec<f64>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    store.put_dense(&format!("k{k}"), v.clone());
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    let existed = store.delete(&format!("k{k}"));
                    prop_assert_eq!(existed, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    let got = store.get_dense(&format!("k{k}")).ok();
                    prop_assert_eq!(got, model.get(&k).cloned());
                }
            }
            prop_assert_eq!(store.len(), model.len());
        }
    }

    /// Any random MLP bundle survives the JSON checkpoint format with
    /// bit-exact predictions (float_roundtrip).
    #[test]
    fn bundle_json_is_bit_exact(
        seed in 0u64..10_000,
        hidden in 1usize..12,
        act in prop::sample::select(vec![Activation::Tanh, Activation::Relu, Activation::Identity]),
    ) {
        let mut rng = seeded(seed, "rt-prop");
        let topo = Topology { widths: vec![5, hidden, 3], hidden_act: act, output_act: Activation::Identity };
        let mlp = Mlp::new(&topo, &mut rng).unwrap();
        let bundle = ModelBundle {
            surrogate: mlp.into(),
            autoencoder: None,
            scaler: None,
            output_scaler: None,
        };
        let restored = ModelBundle::from_json(&bundle.to_json()).unwrap();
        let x = uniform_vec(&mut rng, 5, -3.0, 3.0);
        prop_assert_eq!(
            bundle.surrogate.predict(&x).unwrap(),
            restored.surrogate.predict(&x).unwrap()
        );
    }

    /// Serving through the orchestrator equals direct prediction for any
    /// registered model and input.
    #[test]
    fn served_equals_direct(seed in 0u64..10_000) {
        let mut rng = seeded(seed, "rt-serve");
        let mlp = Mlp::new(&Topology::mlp(vec![4, 6, 2]), &mut rng).unwrap();
        let bundle = ModelBundle {
            surrogate: mlp.into(),
            autoencoder: None,
            scaler: None,
            output_scaler: None,
        };
        let orc = Orchestrator::builder().store(TensorStore::new()).build();
        orc.register_model("m", bundle.clone());
        let x = uniform_vec(&mut rng, 4, -2.0, 2.0);
        let client = orc.client();
        client.put_tensor("in", &x).unwrap();
        client.run_model("m", "in", "out").unwrap();
        prop_assert_eq!(
            client.unpack_tensor("out").unwrap(),
            bundle.surrogate.predict(&x).unwrap()
        );
    }
}
