//! Concurrency stress tests for the batched serving path: many clients ×
//! many models through the worker pool, always asserting bit-equality
//! against the single-sample `SurrogateNet::predict` reference.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use hpcnet_nn::train::FeatureScaler;
use hpcnet_nn::{Autoencoder, Mlp, Topology};
use hpcnet_runtime::{Client, ModelBundle, Orchestrator, TensorStore};
use hpcnet_tensor::rng::{seeded, uniform_vec};
use hpcnet_tensor::{Coo, Matrix};

fn plain_bundle(seed: u64, widths: Vec<usize>) -> ModelBundle {
    let mlp = Mlp::new(&Topology::mlp(widths), &mut seeded(seed, "stress")).unwrap();
    ModelBundle {
        surrogate: mlp.into(),
        autoencoder: None,
        scaler: None,
        output_scaler: None,
    }
}

/// The single-sample reference path, replicated outside the server.
fn reference_predict(bundle: &ModelBundle, x: &[f64]) -> Vec<f64> {
    let mut features = match &bundle.autoencoder {
        Some(ae) => ae.encode(x).unwrap(),
        None => x.to_vec(),
    };
    if let Some(s) = &bundle.scaler {
        s.transform_vec(&mut features);
    }
    let mut y = bundle.surrogate.predict(&features).unwrap();
    if let Some(os) = &bundle.output_scaler {
        os.inverse_transform_vec(&mut y);
    }
    y
}

#[test]
fn many_clients_many_models_bit_equal_single_sample() {
    const CLIENTS: usize = 4;
    const MODELS: usize = 3;
    const REQUESTS_PER_CLIENT: usize = 25;

    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(4)
        .build();
    let bundles: Vec<ModelBundle> = (0..MODELS)
        .map(|m| plain_bundle(100 + m as u64, vec![5, 7, 3]))
        .collect();
    for (m, b) in bundles.iter().enumerate() {
        orc.register_model(&format!("model{m}"), b.clone());
    }

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let client = Client::connect(&orc);
            std::thread::spawn(move || {
                let mut rng = seeded(c as u64, "stress-client");
                let mut sent: Vec<(usize, String, Vec<f64>)> = Vec::new();
                for r in 0..REQUESTS_PER_CLIENT {
                    let m = (c + r) % MODELS;
                    let x = uniform_vec(&mut rng, 5, -2.0, 2.0);
                    let in_key = format!("c{c}r{r}in");
                    let out_key = format!("c{c}r{r}out");
                    client.put_tensor(&in_key, &x).unwrap();
                    if r % 5 == 0 {
                        // Exercise the explicit batch API alongside run_model.
                        client
                            .run_model_batch(
                                &format!("model{m}"),
                                &[(in_key.as_str(), out_key.as_str())],
                            )
                            .unwrap();
                    } else {
                        client
                            .run_model(&format!("model{m}"), &in_key, &out_key)
                            .unwrap();
                    }
                    sent.push((m, out_key, x));
                }
                sent.into_iter()
                    .map(|(m, out_key, x)| (m, client.unpack_tensor(&out_key).unwrap(), x))
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    for h in handles {
        for (m, served, x) in h.join().unwrap() {
            assert_eq!(
                served,
                bundles[m].surrogate.predict(&x).unwrap(),
                "served output diverged from single-sample predict (model {m})"
            );
        }
    }

    let stats = orc.serving_stats();
    assert_eq!(stats.requests, (CLIENTS * REQUESTS_PER_CLIENT) as u64);
    assert_eq!(stats.errors, 0);
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
    let per_model_total: u64 = stats.per_model.values().sum();
    assert_eq!(per_model_total, stats.requests);
    assert_eq!(stats.per_model.len(), MODELS);
    let hist_total: u64 = stats.batch_hist.iter().sum();
    assert_eq!(hist_total, stats.batches);
}

#[test]
fn one_big_client_batch_bit_equal_single_sample_with_scalers() {
    let mut rng = seeded(7, "stress-scaled");
    let mlp = Mlp::new(&Topology::mlp(vec![4, 8, 2]), &mut rng).unwrap();
    let fit_in = Matrix::from_vec(6, 4, uniform_vec(&mut rng, 24, -3.0, 3.0)).unwrap();
    let fit_out = Matrix::from_vec(6, 2, uniform_vec(&mut rng, 12, -3.0, 3.0)).unwrap();
    let bundle = ModelBundle {
        surrogate: mlp.into(),
        autoencoder: None,
        scaler: Some(FeatureScaler::fit(&fit_in)),
        output_scaler: Some(FeatureScaler::fit(&fit_out)),
    };
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(2)
        .build();
    orc.register_model("scaled", bundle.clone());
    let client = Client::connect(&orc);

    // 70 samples: large enough to cross the kernels' parallel threshold.
    let inputs: Vec<Vec<f64>> = (0..70)
        .map(|_| uniform_vec(&mut rng, 4, -2.0, 2.0))
        .collect();
    let keys: Vec<(String, String)> = (0..inputs.len())
        .map(|i| (format!("s{i}in"), format!("s{i}out")))
        .collect();
    for ((in_key, _), x) in keys.iter().zip(&inputs) {
        client.put_tensor(in_key, x).unwrap();
    }
    let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
    client.run_model_batch("scaled", &pairs).unwrap();

    for ((_, out_key), x) in keys.iter().zip(&inputs) {
        assert_eq!(
            client.unpack_tensor(out_key).unwrap(),
            reference_predict(&bundle, x)
        );
    }
}

#[test]
fn batched_autoencoder_paths_bit_equal_single_sample() {
    let mut rng = seeded(11, "stress-ae");
    let ae = Autoencoder::new(16, 4, &mut rng).unwrap();
    let mlp = Mlp::new(&Topology::mlp(vec![4, 6, 2]), &mut rng).unwrap();
    let bundle = ModelBundle {
        surrogate: mlp.into(),
        autoencoder: Some(ae),
        scaler: None,
        output_scaler: None,
    };
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(2)
        .build();
    orc.register_model("ae", bundle.clone());
    let client = Client::connect(&orc);

    // Dense inputs through the batched encoder.
    let dense_inputs: Vec<Vec<f64>> = (0..9)
        .map(|_| uniform_vec(&mut rng, 16, -1.0, 1.0))
        .collect();
    for (i, x) in dense_inputs.iter().enumerate() {
        client.put_tensor(&format!("d{i}in"), x).unwrap();
    }
    let dense_keys: Vec<(String, String)> = (0..dense_inputs.len())
        .map(|i| (format!("d{i}in"), format!("d{i}out")))
        .collect();
    let dense_pairs: Vec<(&str, &str)> = dense_keys
        .iter()
        .map(|(i, o)| (i.as_str(), o.as_str()))
        .collect();
    client.run_model_batch("ae", &dense_pairs).unwrap();
    for ((_, out_key), x) in dense_keys.iter().zip(&dense_inputs) {
        assert_eq!(
            client.unpack_tensor(out_key).unwrap(),
            reference_predict(&bundle, x)
        );
    }

    // Sparse single-row inputs, stacked by the server without densifying.
    let sparse_rows: Vec<Vec<(usize, f64)>> = vec![
        vec![(0, 1.0), (5, -2.0)],
        vec![],
        vec![(15, 3.5)],
        vec![(2, 0.5), (3, 0.25), (9, -0.75)],
    ];
    for (i, entries) in sparse_rows.iter().enumerate() {
        let mut coo = Coo::new(1, 16);
        for &(j, v) in entries {
            coo.push(0, j, v);
        }
        client
            .put_sparse_tensor(&format!("sp{i}in"), coo.to_csr())
            .unwrap();
    }
    let sparse_keys: Vec<(String, String)> = (0..sparse_rows.len())
        .map(|i| (format!("sp{i}in"), format!("sp{i}out")))
        .collect();
    let sparse_pairs: Vec<(&str, &str)> = sparse_keys
        .iter()
        .map(|(i, o)| (i.as_str(), o.as_str()))
        .collect();
    client.run_model_batch("ae", &sparse_pairs).unwrap();
    for ((_, out_key), entries) in sparse_keys.iter().zip(&sparse_rows) {
        // Reference: the single-sample sparse path (encode_sparse on one
        // row, then predict), which the stacked batch must match bitwise.
        let mut coo = Coo::new(1, 16);
        for &(j, v) in entries {
            coo.push(0, j, v);
        }
        let features = bundle
            .autoencoder
            .as_ref()
            .unwrap()
            .encode_sparse(&coo.to_csr())
            .unwrap();
        let expected = bundle.surrogate.predict(features.row(0)).unwrap();
        assert_eq!(
            client.unpack_tensor(out_key).unwrap(),
            expected,
            "sparse batched path diverged"
        );
    }
}

#[test]
fn mixed_good_and_bad_requests_under_load_stay_attributed() {
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(3)
        .build();
    orc.register_model("m", plain_bundle(42, vec![3, 5, 1]));
    let handles: Vec<_> = (0..4)
        .map(|c| {
            let client = Client::connect(&orc);
            std::thread::spawn(move || {
                let mut oks = 0usize;
                let mut errs = 0usize;
                for r in 0..20 {
                    let in_key = format!("mx{c}r{r}in");
                    let out_key = format!("mx{c}r{r}out");
                    if r % 4 == 0 {
                        // No tensor written: this request must fail alone.
                        match client.run_model("m", &in_key, &out_key) {
                            Ok(()) => oks += 1,
                            Err(_) => errs += 1,
                        }
                    } else {
                        client
                            .put_tensor(&in_key, &[0.1 * r as f64, 0.2, -0.3])
                            .unwrap();
                        client.run_model("m", &in_key, &out_key).unwrap();
                        assert_eq!(client.unpack_tensor(&out_key).unwrap().len(), 1);
                        oks += 1;
                    }
                }
                (oks, errs)
            })
        })
        .collect();
    let mut total_errs = 0;
    for h in handles {
        let (_, errs) = h.join().unwrap();
        total_errs += errs;
    }
    assert_eq!(
        total_errs,
        4 * 5,
        "exactly the tensor-less requests must fail"
    );
    let stats = orc.serving_stats();
    assert_eq!(stats.requests, 80);
    assert_eq!(stats.errors, 20);
}
