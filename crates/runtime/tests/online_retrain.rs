//! End-to-end online retraining (DESIGN.md §17): a weak surrogate's
//! guard fallbacks feed the replay buffer, a fine-tune pass hot-swaps an
//! improved candidate to a higher version with measurably fewer
//! fallbacks, and a candidate trained on poisoned labels regresses its
//! probation window and is rolled back automatically — all without a
//! single failed request or worker restart.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use hpcnet_nn::train::Preprocessing;
use hpcnet_nn::{Mlp, SurrogateNet, Topology, TrainConfig, Trainer};
use hpcnet_runtime::{
    ClientApi, ModelBundle, Orchestrator, QualityGuard, RetrainConfig, TensorStore,
};
use hpcnet_tensor::Matrix;

const MODEL: &str = "retrain-e2e";
const TOLERANCE: f64 = 0.25;

/// The "original code region" the surrogate imitates.
fn exact(x: &[f64]) -> Vec<f64> {
    vec![1.0 + 0.5 * x[0] - 0.25 * x[1] + 0.1 * x[2]]
}

fn probe_input(i: u64) -> Vec<f64> {
    let t = i as f64;
    vec![(t * 0.37).sin(), (t * 0.61).cos(), (t * 0.17).sin()]
}

/// A surrogate pre-trained on wrong labels (constant zero): `exact` is
/// at least 0.15 everywhere on the probe distribution, so with a 0.25
/// tolerance (nearly) every guarded answer misses and falls back.
fn weak_bundle() -> ModelBundle {
    let mut rng = hpcnet_tensor::rng::seeded(11, "retrain-e2e");
    let mut mlp = Mlp::new(&Topology::mlp(vec![3, 8, 1]), &mut rng).expect("topology");
    let xs: Vec<Vec<f64>> = (0..64).map(probe_input).collect();
    let zeros = vec![vec![0.0]; xs.len()];
    Trainer::new(TrainConfig {
        epochs: 80,
        lr: 1e-2,
        train_ratio: 1.0,
        preprocessing: Preprocessing::None,
        patience: 0,
        ..TrainConfig::default()
    })
    .fit(
        &mut mlp,
        &Matrix::from_rows(&xs).expect("x"),
        &Matrix::from_rows(&zeros).expect("y"),
    )
    .expect("weak pre-training");
    ModelBundle {
        surrogate: SurrogateNet::from(mlp),
        autoencoder: None,
        scaler: None,
        output_scaler: None,
    }
}

fn retrain_config() -> RetrainConfig {
    RetrainConfig {
        min_samples: 24,
        min_interval: Duration::ZERO,
        epochs: 400,
        lr: 1e-2,
        batch_size: 16,
        probation_window: 16,
        // Deterministic tests drive `retrain_now()` themselves; park the
        // background thread so it cannot race the assertions.
        tick: Duration::from_secs(3600),
        ..RetrainConfig::default()
    }
}

/// Drive `n` guarded requests; every one must succeed — a fallback is
/// an answer, not an error. Returns how many fell back.
fn drive(orc: &Orchestrator, offset: u64, n: u64) -> u64 {
    let client = orc.client();
    let before = orc.serving_stats().quality_fallbacks;
    for i in 0..n {
        let in_key = format!("rt/in{}", offset + i);
        let out_key = format!("rt/out{}", offset + i);
        client
            .put_tensor(&in_key, &probe_input(offset + i))
            .expect("put");
        client.run_model(MODEL, &in_key, &out_key).expect("run");
        let y = client.unpack_tensor(&out_key).expect("unpack");
        assert_eq!(y.len(), 1, "guarded answers keep the output shape");
        assert!(y[0].is_finite());
    }
    orc.serving_stats().quality_fallbacks - before
}

fn metric_total(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(name))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

#[test]
fn fallbacks_retrain_hot_swap_and_regressions_roll_back() {
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(2)
        .online_retraining(retrain_config())
        .build();
    assert!(orc.retrains_online());
    let guard = QualityGuard::new(|x, y| (y[0] - exact(x)[0]).abs() <= TOLERANCE)
        .with_fallback(|x| exact(x));
    orc.register_guarded_model(MODEL, weak_bundle(), guard);
    assert_eq!(orc.model_versions()[MODEL], 1);

    // Phase 1: the weak surrogate misses; every fallback is captured.
    const PHASE: u64 = 48;
    let before = drive(&orc, 0, PHASE);
    assert!(
        before >= 40,
        "the weak surrogate should miss nearly always, missed {before}/{PHASE}"
    );
    assert!(orc.replay_buffered(MODEL) >= 24);

    // One deterministic retrain pass: fine-tune on the captured exact
    // answers, beat the served net on the holdout, hot-swap to v2.
    orc.retrain_now();
    assert_eq!(
        orc.model_versions()[MODEL],
        2,
        "accepted swap bumps the version"
    );
    let stats = orc.serving_stats();
    assert_eq!(stats.retrain_swaps, 1);
    assert_eq!(stats.retrain_runs, 1);
    assert!(stats.retrain_samples >= PHASE - 8);
    assert_eq!(stats.model_versions[MODEL], 2);

    // Phase 2: the candidate was tuned on the exact region's own
    // answers — measurably fewer fallbacks, and its probation window
    // (16 guarded requests) passes against the ~100%-miss baseline.
    let after = drive(&orc, PHASE, 32);
    assert!(
        after < 32,
        "the fine-tuned candidate must win back at least some requests"
    );
    assert!(
        (after as f64) / 32.0 < (before as f64) / (PHASE as f64),
        "fallback rate must drop after the hot-swap: {after}/32 vs {before}/{PHASE}"
    );
    assert_eq!(
        orc.model_versions()[MODEL],
        2,
        "a passing probation keeps the candidate"
    );
    assert_eq!(orc.serving_stats().retrain_rollbacks, 0);

    // Phase 3: poison the labels — an always-rejecting validator whose
    // fallback answers (and therefore labels) are offset by 5.0. The
    // fine-tuner dutifully fits the poison (it beats the served net on
    // the poisoned holdout), swaps to v3 ...
    orc.set_quality_guard(
        MODEL,
        QualityGuard::new(|_, _| false).with_fallback(|x| vec![exact(x)[0] + 5.0]),
    )
    .expect("guard swap");
    let poisoned = drive(&orc, 1000, 24);
    assert_eq!(poisoned, 24, "the poisoned guard rejects everything");
    orc.retrain_now();
    assert_eq!(
        orc.model_versions()[MODEL],
        3,
        "the poisoned candidate swaps in"
    );
    assert_eq!(orc.serving_stats().retrain_swaps, 2);

    // ... and its probation window (all misses, vs a baseline diluted by
    // phase 2's hits) regresses: the displaced v2 entry is reinstalled
    // and the version observably drops back.
    drive(&orc, 2000, 16);
    assert_eq!(
        orc.model_versions()[MODEL],
        2,
        "a regressing candidate rolls back to the displaced version"
    );
    let stats = orc.serving_stats();
    assert_eq!(stats.retrain_rollbacks, 1);
    assert_eq!(stats.model_versions[MODEL], 2);

    // Restore an honest guard: the rolled-back v2 still serves well.
    orc.set_quality_guard(
        MODEL,
        QualityGuard::new(|x, y| (y[0] - exact(x)[0]).abs() <= TOLERANCE)
            .with_fallback(|x| exact(x)),
    )
    .expect("guard restore");
    let healed = drive(&orc, 3000, 16);
    assert!(healed < 16, "the reinstalled v2 keeps its quality");

    // The whole story is visible on the metrics surface, through the
    // in-process client exactly as through the remote ones.
    let client = orc.client();
    let text = client.metrics_text().expect("metrics");
    assert_eq!(metric_total(&text, "hpcnet_retrain_swaps_total"), 2.0);
    assert_eq!(metric_total(&text, "hpcnet_retrain_rollbacks_total"), 1.0);
    assert!(metric_total(&text, "hpcnet_retrain_samples_total") > 0.0);
    assert!(metric_total(&text, "hpcnet_retrain_runs_total") >= 2.0);
    assert!(text.contains("hpcnet_model_version"));
    assert_eq!(client.model_versions().expect("versions")[MODEL], 2);
    // Swap and rollback each left a must-retain trace in the recorder.
    let dump = orc.trace_dump();
    assert!(
        dump.iter()
            .any(|t| t.tags.iter().any(|tag| tag == "retrain")),
        "retrain traces must be retained"
    );

    let final_stats = orc.shutdown();
    assert_eq!(
        final_stats.requests,
        PHASE + 32 + 24 + 16 + 16,
        "every request was answered; none failed, nothing restarted"
    );
}

#[test]
fn background_thread_retrains_without_manual_triggering() {
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(2)
        .online_retraining(RetrainConfig {
            min_samples: 24,
            min_interval: Duration::ZERO,
            epochs: 200,
            lr: 1e-2,
            probation_window: 8,
            tick: Duration::from_millis(10),
            ..RetrainConfig::default()
        })
        .build();
    let guard = QualityGuard::new(|x, y| (y[0] - exact(x)[0]).abs() <= TOLERANCE)
        .with_fallback(|x| exact(x));
    orc.register_guarded_model(MODEL, weak_bundle(), guard);

    drive(&orc, 0, 48);
    let deadline = Instant::now() + Duration::from_secs(30);
    while orc.model_versions()[MODEL] < 2 {
        assert!(
            Instant::now() < deadline,
            "background retrainer never swapped"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(orc.serving_stats().retrain_swaps >= 1);
    orc.shutdown();
}

#[test]
fn re_registration_resets_the_online_state() {
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .online_retraining(retrain_config())
        .build();
    let guard = QualityGuard::new(|_, _| false).with_fallback(|x| exact(x));
    orc.register_guarded_model(MODEL, weak_bundle(), guard.clone());
    drive(&orc, 0, 8);
    assert!(orc.replay_buffered(MODEL) > 0);
    // Re-registering replaces the bundle: samples captured under the old
    // one are dropped and the version still advances.
    orc.register_guarded_model(MODEL, weak_bundle(), guard);
    assert_eq!(orc.replay_buffered(MODEL), 0);
    assert_eq!(orc.model_versions()[MODEL], 2);
    orc.shutdown();
}

#[test]
fn concurrent_clients_never_fail_across_a_swap() {
    // Hammer the model from several threads while a swap and a guard
    // change land mid-stream: the atomic pointer exchange means no
    // request may error and every answer keeps its shape.
    let orc = Arc::new(
        Orchestrator::builder()
            .store(TensorStore::new())
            .workers(2)
            .online_retraining(retrain_config())
            .build(),
    );
    let guard = QualityGuard::new(|x, y| (y[0] - exact(x)[0]).abs() <= TOLERANCE)
        .with_fallback(|x| exact(x));
    orc.register_guarded_model(MODEL, weak_bundle(), guard);
    drive(&orc, 0, 32);

    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            let orc = Arc::clone(&orc);
            std::thread::spawn(move || {
                let client = orc.client();
                for i in 0..64u64 {
                    let k = 10_000 + c * 1_000 + i;
                    let in_key = format!("cc/in{k}");
                    let out_key = format!("cc/out{k}");
                    client.put_tensor(&in_key, &probe_input(k)).expect("put");
                    client.run_model(MODEL, &in_key, &out_key).expect("run");
                    assert_eq!(client.unpack_tensor(&out_key).expect("unpack").len(), 1);
                }
            })
        })
        .collect();
    // Land the swap while the clients are mid-flight.
    orc.retrain_now();
    for h in handles {
        h.join().expect("client thread");
    }
    assert!(orc.model_versions()[MODEL] >= 2);
    Arc::try_unwrap(orc)
        .map_err(|_| "orchestrator still shared")
        .expect("sole owner")
        .shutdown();
}
