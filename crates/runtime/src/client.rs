//! The application-side request client (paper Listing 1).
//!
//! ```text
//! autoHPCnet::Client client(false);
//! client.put_tensor(in_key, ...);
//! client.run_model("AI-CFD-net", {in_key}, {out_key});
//! client.unpack_tensor(out_key, ...);
//! ```
//!
//! Every call is fallible: keys are validated into [`TensorKey`]s at the
//! boundary, a full admission queue rejects with
//! [`RuntimeError::Overloaded`], deadlines are enforced at enqueue time
//! (and again server-side), and a draining orchestrator answers
//! [`RuntimeError::ShuttingDown`].

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender, TrySendError};
use hpcnet_telemetry::{Trace, TraceContext};

use crate::server::{Orchestrator, ServerRequest, ServingShared};
use crate::store::{TensorKey, TensorStore};
use crate::{Result, RuntimeError};

/// A lightweight client compiled "into the application": it talks to the
/// orchestrator's worker pool over a bounded channel, exactly mirroring
/// the paper's request/response flow.
///
/// # Examples
///
/// ```
/// use hpcnet_runtime::{ModelBundle, Orchestrator};
/// use hpcnet_nn::{Mlp, Topology};
/// let orc = Orchestrator::builder().build();
/// let mut rng = hpcnet_tensor::rng::seeded(1, "doc");
/// let mlp = Mlp::new(&Topology::mlp(vec![2, 4, 1]), &mut rng).unwrap();
/// orc.register_model("net", ModelBundle {
///     surrogate: mlp.into(), autoencoder: None, scaler: None, output_scaler: None,
/// });
/// let client = orc.client();
/// client.put_tensor("in", &[0.5, -0.5]).unwrap();
/// client.run_model("net", "in", "out").unwrap();
/// assert_eq!(client.unpack_tensor("out").unwrap().len(), 1);
/// ```
pub struct Client {
    store: TensorStore,
    tx: Sender<ServerRequest>,
    shared: Arc<ServingShared>,
}

impl Client {
    pub(crate) fn from_parts(
        store: TensorStore,
        tx: Sender<ServerRequest>,
        shared: Arc<ServingShared>,
    ) -> Self {
        Client { store, tx, shared }
    }

    /// Connect a client to a running orchestrator (equivalent to
    /// [`Orchestrator::client`]).
    pub fn connect(orchestrator: &Orchestrator) -> Self {
        orchestrator.client()
    }

    /// Put a dense input tensor on the database (Listing 1, line 5).
    ///
    /// Fails with [`RuntimeError::InvalidKey`] on a malformed key and
    /// [`RuntimeError::ShuttingDown`] once the orchestrator is draining.
    pub fn put_tensor(&self, key: &str, value: &[f64]) -> Result<()> {
        let key = TensorKey::new(key)?;
        self.ensure_admitting()?;
        self.store.put_dense(key.as_str(), value.to_vec());
        Ok(())
    }

    /// Put a sparse input tensor on the database without densification.
    pub fn put_sparse_tensor(&self, key: &str, value: hpcnet_tensor::Csr) -> Result<()> {
        let key = TensorKey::new(key)?;
        self.ensure_admitting()?;
        self.store.put_sparse(key.as_str(), value);
        Ok(())
    }

    /// Run a model already in the database (Listing 1, line 7). Blocks
    /// until the server replies. Uses the orchestrator's default deadline
    /// when one was configured.
    pub fn run_model(&self, model: &str, in_key: &str, out_key: &str) -> Result<()> {
        self.run_model_inner(model, in_key, out_key, None, None)
    }

    /// [`Client::run_model`] with an explicit per-request deadline that
    /// overrides the orchestrator default. The deadline is enforced both
    /// at enqueue time and server-side before the coalesced batch runs.
    pub fn run_model_with_deadline(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        deadline: Duration,
    ) -> Result<()> {
        self.run_model_inner(model, in_key, out_key, Some(deadline), None)
    }

    /// [`Client::run_model`] carrying an upstream [`TraceContext`]
    /// (DESIGN.md §16): the server-side request span joins the caller's
    /// trace as a child of `trace.parent_span` instead of rooting a
    /// fresh one. The networked front end uses this to propagate the
    /// context it decoded off the wire.
    pub fn run_model_with_context(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        deadline: Option<Duration>,
        trace: Option<TraceContext>,
    ) -> Result<()> {
        self.run_model_inner(model, in_key, out_key, deadline, trace)
    }

    fn run_model_inner(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        deadline: Option<Duration>,
        trace: Option<TraceContext>,
    ) -> Result<()> {
        let in_key = TensorKey::new(in_key)?;
        let out_key = TensorKey::new(out_key)?;
        self.ensure_admitting()?;
        let deadline = self.compute_deadline(deadline)?;
        let (reply_tx, reply_rx) = bounded(1);
        self.submit(ServerRequest::RunModel {
            model: model.to_string(),
            in_key,
            out_key,
            deadline,
            enqueued: Instant::now(),
            trace,
            reply: reply_tx,
        })?;
        reply_rx.recv().map_err(|_| self.closed_error())?
    }

    /// Run a model over many `(in_key, out_key)` pairs in one request.
    ///
    /// The whole batch travels to the worker pool as a single message and
    /// executes as one batched forward pass, so this is the
    /// highest-throughput way to serve many samples of one model. Blocks
    /// until every pair has been served; output rows are bit-identical to
    /// issuing `run_model` per pair. Returns the first error if any pair
    /// failed (all other pairs still complete and store their outputs).
    pub fn run_model_batch(&self, model: &str, pairs: &[(&str, &str)]) -> Result<()> {
        self.run_model_batch_inner(model, pairs, None)
    }

    /// [`Client::run_model_batch`] with an explicit deadline covering the
    /// whole batch.
    pub fn run_model_batch_with_deadline(
        &self,
        model: &str,
        pairs: &[(&str, &str)],
        deadline: Duration,
    ) -> Result<()> {
        self.run_model_batch_inner(model, pairs, Some(deadline))
    }

    fn run_model_batch_inner(
        &self,
        model: &str,
        pairs: &[(&str, &str)],
        deadline: Option<Duration>,
    ) -> Result<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        let pairs: Vec<(TensorKey, TensorKey)> = pairs
            .iter()
            .map(|(i, o)| Ok((TensorKey::new(*i)?, TensorKey::new(*o)?)))
            .collect::<Result<_>>()?;
        self.ensure_admitting()?;
        let deadline = self.compute_deadline(deadline)?;
        let (reply_tx, reply_rx) = bounded(1);
        self.submit(ServerRequest::RunBatch {
            model: model.to_string(),
            pairs,
            deadline,
            enqueued: Instant::now(),
            trace: None,
            reply: reply_tx,
        })?;
        let results = reply_rx.recv().map_err(|_| self.closed_error())?;
        results.into_iter().find(|r| r.is_err()).unwrap_or(Ok(()))
    }

    /// Get the result of the model (Listing 1, line 9).
    pub fn unpack_tensor(&self, key: &str) -> Result<Vec<f64>> {
        self.store.get_dense(key)
    }

    /// Recent request traces retained by the orchestrator's flight
    /// recorder, oldest first (DESIGN.md §16). Empty when telemetry is
    /// disabled.
    pub fn trace_dump(&self) -> Vec<Trace> {
        self.shared.metrics.recorder().snapshot()
    }

    /// Retained slow-request log lines, oldest first (see
    /// [`crate::OrchestratorBuilder::slow_request_threshold`]).
    pub fn slow_log(&self) -> Vec<String> {
        self.shared.metrics.slow_log()
    }

    /// Delete a tensor from the database; returns whether it existed.
    /// Long-running applications should delete consumed outputs so an
    /// uncapped store does not grow without bound.
    pub fn del_tensor(&self, key: &str) -> Result<bool> {
        let key = TensorKey::new(key)?;
        Ok(self.store.delete(key.as_str()))
    }

    /// Is the orchestrator still admitting requests?
    pub fn is_admitting(&self) -> bool {
        !self.shared.shutting_down.load(Ordering::SeqCst)
    }

    fn ensure_admitting(&self) -> Result<()> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Err(RuntimeError::ShuttingDown);
        }
        Ok(())
    }

    /// The error to report when the channel is gone: `ShuttingDown` during
    /// a drain, `Disconnected` if the orchestrator vanished outright.
    fn closed_error(&self) -> RuntimeError {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            RuntimeError::ShuttingDown
        } else {
            RuntimeError::Disconnected
        }
    }

    /// Enqueue-side deadline stamping: a zero (or already-elapsed)
    /// deadline fails immediately with `DeadlineExceeded` — the request
    /// never occupies queue capacity.
    fn compute_deadline(&self, explicit: Option<Duration>) -> Result<Option<Instant>> {
        match explicit.or(self.shared.default_deadline) {
            None => Ok(None),
            Some(d) if d.is_zero() => Err(RuntimeError::DeadlineExceeded),
            // An unrepresentable (absurdly far) deadline means "no limit".
            Some(d) => Ok(Instant::now().checked_add(d)),
        }
    }

    /// Bounded admission: a full queue is an `Overloaded` rejection, not
    /// a block; the rejection is counted in the orchestrator's telemetry
    /// (and an `overload_rejected` event lands in the anomaly ring).
    fn submit(&self, req: ServerRequest) -> Result<()> {
        match self.tx.try_send(req) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(req)) => {
                let model = match &req {
                    ServerRequest::RunModel { model, .. }
                    | ServerRequest::RunBatch { model, .. } => model.as_str(),
                    ServerRequest::Drain => "",
                };
                self.shared
                    .metrics
                    .record_overload(model, self.shared.queue_depth);
                Err(RuntimeError::Overloaded {
                    queue_depth: self.shared.queue_depth,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(self.closed_error()),
        }
    }
}

/// The in-process client is the reference implementation of the shared
/// client surface; `hpcnet-net`'s `RemoteClient` implements the same
/// trait over TCP and `hpcnet-cluster`'s `ClusterClient` across a
/// sharded fleet. The observability calls are infallible in-process, so
/// they wrap their snapshots in `Ok` to match the trait's
/// transport-fallible signatures — the (pre-v2) infallible inherent
/// duplicates are gone; see the README migration table.
impl crate::ClientApi for Client {
    fn put_tensor(&self, key: &str, value: &[f64]) -> Result<()> {
        Client::put_tensor(self, key, value)
    }

    fn put_sparse_tensor(&self, key: &str, value: hpcnet_tensor::Csr) -> Result<()> {
        Client::put_sparse_tensor(self, key, value)
    }

    fn run_model(&self, model: &str, in_key: &str, out_key: &str) -> Result<()> {
        Client::run_model(self, model, in_key, out_key)
    }

    fn run_model_with_deadline(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        deadline: Duration,
    ) -> Result<()> {
        Client::run_model_with_deadline(self, model, in_key, out_key, deadline)
    }

    fn run_model_batch(&self, model: &str, pairs: &[(&str, &str)]) -> Result<()> {
        // Coalesced: the whole batch travels as one message and executes
        // as one batched forward pass (not the trait's per-pair loop).
        Client::run_model_batch(self, model, pairs)
    }

    fn run_model_batch_with_deadline(
        &self,
        model: &str,
        pairs: &[(&str, &str)],
        deadline: Duration,
    ) -> Result<()> {
        Client::run_model_batch_with_deadline(self, model, pairs, deadline)
    }

    fn unpack_tensor(&self, key: &str) -> Result<Vec<f64>> {
        Client::unpack_tensor(self, key)
    }

    fn del_tensor(&self, key: &str) -> Result<bool> {
        Client::del_tensor(self, key)
    }

    fn ping(&self) -> Result<()> {
        self.ensure_admitting()
    }

    fn serving_stats(&self) -> Result<crate::ServingStats> {
        Ok(self.shared.metrics.stats())
    }

    fn metrics_text(&self) -> Result<String> {
        Ok(self.shared.metrics.registry().prometheus_text())
    }

    fn trace_dump(&self) -> Result<Vec<Trace>> {
        Ok(Client::trace_dump(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClientApi;
    use hpcnet_nn::{Mlp, Topology};
    use hpcnet_tensor::rng::seeded;

    fn serve_identity_like() -> Orchestrator {
        let orc = Orchestrator::builder().build();
        let mlp = Mlp::new(&Topology::mlp(vec![2, 3, 1]), &mut seeded(3, "cl")).unwrap();
        orc.register_model(
            "net",
            crate::server::ModelBundle {
                surrogate: mlp.into(),
                autoencoder: None,
                scaler: None,
                output_scaler: None,
            },
        );
        orc
    }

    #[test]
    fn listing1_flow_works_end_to_end() {
        let orc = serve_identity_like();
        let client = orc.client();
        client.put_tensor("in", &[0.4, -0.4]).unwrap();
        client.run_model("net", "in", "out").unwrap();
        let out = client.unpack_tensor("out").unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn invalid_keys_are_rejected_before_any_work() {
        let orc = serve_identity_like();
        let client = orc.client();
        assert!(matches!(
            client.put_tensor("", &[1.0]),
            Err(RuntimeError::InvalidKey(_))
        ));
        assert!(matches!(
            client.run_model("net", "", "out"),
            Err(RuntimeError::InvalidKey(_))
        ));
        assert!(matches!(
            client.run_model_batch("net", &[("ok", "")]),
            Err(RuntimeError::InvalidKey(_))
        ));
        assert_eq!(orc.serving_stats().requests, 0);
    }

    #[test]
    fn multiple_clients_share_one_server() {
        let orc = serve_identity_like();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let client = Client::connect(&orc);
                std::thread::spawn(move || {
                    let in_key = format!("in{t}");
                    let out_key = format!("out{t}");
                    client.put_tensor(&in_key, &[t as f64, -1.0]).unwrap();
                    client.run_model("net", &in_key, &out_key).unwrap();
                    client.unpack_tensor(&out_key).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().len(), 1);
        }
    }

    #[test]
    fn run_model_batch_serves_every_pair_bitwise() {
        let orc = serve_identity_like();
        let mlp = Mlp::new(&Topology::mlp(vec![2, 3, 1]), &mut seeded(3, "cl")).unwrap();
        let client = orc.client();
        let inputs: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![0.3 * i as f64, -0.1 * i as f64])
            .collect();
        for (i, x) in inputs.iter().enumerate() {
            client.put_tensor(&format!("bin{i}"), x).unwrap();
        }
        let keys: Vec<(String, String)> = (0..6)
            .map(|i| (format!("bin{i}"), format!("bout{i}")))
            .collect();
        let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
        client.run_model_batch("net", &pairs).unwrap();
        for (i, x) in inputs.iter().enumerate() {
            assert_eq!(
                client.unpack_tensor(&format!("bout{i}")).unwrap(),
                mlp.predict(x).unwrap(),
                "pair {i} diverged from the single-sample path"
            );
        }
        assert_eq!(client.run_model_batch("net", &[]), Ok(()));
    }

    #[test]
    fn run_model_batch_reports_first_error_but_serves_the_rest() {
        let orc = serve_identity_like();
        let client = orc.client();
        client.put_tensor("ok-in", &[0.1, 0.2]).unwrap();
        let err = client
            .run_model_batch("net", &[("ok-in", "ok-out"), ("missing-in", "missing-out")])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::MissingTensor(_)));
        assert_eq!(client.unpack_tensor("ok-out").unwrap().len(), 1);
    }

    #[test]
    fn unknown_model_surfaces_error_through_channel() {
        let orc = serve_identity_like();
        let client = orc.client();
        client.put_tensor("in", &[1.0, 2.0]).unwrap();
        assert_eq!(
            client.run_model("ghost", "in", "out"),
            Err(RuntimeError::MissingModel("ghost".into()))
        );
    }

    #[test]
    fn zero_deadline_fails_at_enqueue() {
        let orc = serve_identity_like();
        let client = orc.client();
        client.put_tensor("in", &[0.1, 0.2]).unwrap();
        assert_eq!(
            client.run_model_with_deadline("net", "in", "out", Duration::ZERO),
            Err(RuntimeError::DeadlineExceeded)
        );
        assert_eq!(
            client.run_model_batch_with_deadline("net", &[("in", "out")], Duration::ZERO),
            Err(RuntimeError::DeadlineExceeded)
        );
        // Nothing reached the workers.
        assert_eq!(orc.serving_stats().requests, 0);
    }

    #[test]
    fn generous_deadline_still_serves() {
        let orc = serve_identity_like();
        let client = orc.client();
        client.put_tensor("in", &[0.4, 0.1]).unwrap();
        client
            .run_model_with_deadline("net", "in", "out", Duration::from_secs(30))
            .unwrap();
        assert_eq!(client.unpack_tensor("out").unwrap().len(), 1);
    }

    #[test]
    fn del_tensor_and_stats_are_reachable_from_the_client() {
        let orc = serve_identity_like();
        let client = orc.client();
        client.put_tensor("in", &[0.1, -0.2]).unwrap();
        client.run_model("net", "in", "out").unwrap();
        assert_eq!(client.del_tensor("out"), Ok(true));
        assert_eq!(client.del_tensor("out"), Ok(false));
        assert!(matches!(
            client.del_tensor(""),
            Err(RuntimeError::InvalidKey(_))
        ));
        assert_eq!(client.serving_stats().unwrap().requests, 1);
        assert!(client
            .metrics_text()
            .unwrap()
            .contains("hpcnet_serving_requests_total{model=\"net\"} 1"));
    }

    #[test]
    fn listing1_flow_is_expressible_over_the_trait() {
        // The generic body only sees `ClientApi`, proving call sites can
        // swap the in-process client for a remote one.
        fn drive<C: crate::ClientApi>(client: &C) -> Vec<f64> {
            client.ping().unwrap();
            client.put_tensor("t-in", &[0.25, -0.75]).unwrap();
            client.run_model("net", "t-in", "t-out").unwrap();
            client
                .run_model_batch("net", &[("t-in", "t-bout")])
                .unwrap();
            let y = client.unpack_tensor("t-out").unwrap();
            assert_eq!(y, client.unpack_tensor("t-bout").unwrap());
            assert!(client.del_tensor("t-in").unwrap());
            assert_eq!(client.serving_stats().unwrap().requests, 2);
            assert!(client.metrics_text().unwrap().contains("hpcnet_serving_"));
            y
        }
        let orc = serve_identity_like();
        assert_eq!(drive(&orc.client()).len(), 1);
    }

    #[test]
    fn client_reports_shutdown() {
        let orc = serve_identity_like();
        let client = orc.client();
        client.put_tensor("in", &[0.4, 0.1]).unwrap();
        client.run_model("net", "in", "out").unwrap();
        assert!(client.is_admitting());
        let stats = orc.shutdown();
        assert_eq!(stats.requests, 1);
        assert!(!client.is_admitting());
        // The trait-level probe reports the same admission state, typed.
        assert_eq!(client.ping(), Err(RuntimeError::ShuttingDown));
        assert_eq!(
            client.put_tensor("in2", &[1.0]),
            Err(RuntimeError::ShuttingDown)
        );
        assert_eq!(
            client.run_model("net", "in", "out2"),
            Err(RuntimeError::ShuttingDown)
        );
    }
}
