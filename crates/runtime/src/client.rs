//! The application-side request client (paper Listing 1).
//!
//! ```text
//! autoHPCnet::Client client(false);
//! client.put_tensor(in_key, ...);
//! client.run_model("AI-CFD-net", {in_key}, {out_key});
//! client.unpack_tensor(out_key, ...);
//! ```

use crossbeam::channel::bounded;

use crate::server::{Orchestrator, ServerRequest};
use crate::store::TensorStore;
use crate::{Result, RuntimeError};

/// A lightweight client compiled "into the application": it talks to the
/// orchestrator's worker thread over a channel, exactly mirroring the
/// paper's request/response flow.
///
/// # Examples
///
/// ```
/// use hpcnet_runtime::{Client, ModelBundle, Orchestrator, TensorStore};
/// use hpcnet_nn::{Mlp, Topology};
/// let orc = Orchestrator::launch(TensorStore::new());
/// let mut rng = hpcnet_tensor::rng::seeded(1, "doc");
/// let mlp = Mlp::new(&Topology::mlp(vec![2, 4, 1]), &mut rng).unwrap();
/// orc.register_model("net", ModelBundle {
///     surrogate: mlp.into(), autoencoder: None, scaler: None, output_scaler: None,
/// });
/// let client = Client::connect(&orc);
/// client.put_tensor("in", vec![0.5, -0.5]);
/// client.run_model("net", "in", "out").unwrap();
/// assert_eq!(client.unpack_tensor("out").unwrap().len(), 1);
/// ```
pub struct Client {
    store: TensorStore,
    tx: crossbeam::channel::Sender<ServerRequest>,
}

impl Client {
    /// Connect a client to a running orchestrator.
    pub fn connect(orchestrator: &Orchestrator) -> Self {
        Client {
            store: orchestrator.store().clone(),
            tx: orchestrator.sender(),
        }
    }

    /// Put a dense input tensor on the database (Listing 1, line 5).
    pub fn put_tensor(&self, key: &str, value: Vec<f64>) {
        self.store.put_dense(key, value);
    }

    /// Put a sparse input tensor on the database without densification.
    pub fn put_sparse_tensor(&self, key: &str, value: hpcnet_tensor::Csr) {
        self.store.put_sparse(key, value);
    }

    /// Run a model already in the database (Listing 1, line 7). Blocks
    /// until the server replies.
    pub fn run_model(&self, model: &str, in_key: &str, out_key: &str) -> Result<()> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(ServerRequest::RunModel {
                model: model.to_string(),
                in_key: in_key.to_string(),
                out_key: out_key.to_string(),
                reply: reply_tx,
            })
            .map_err(|_| RuntimeError::Disconnected)?;
        reply_rx.recv().map_err(|_| RuntimeError::Disconnected)?
    }

    /// Run a model over many `(in_key, out_key)` pairs in one request.
    ///
    /// The whole batch travels to the worker pool as a single message and
    /// executes as one batched forward pass, so this is the
    /// highest-throughput way to serve many samples of one model. Blocks
    /// until every pair has been served; output rows are bit-identical to
    /// issuing `run_model` per pair. Returns the first error if any pair
    /// failed (all other pairs still complete and store their outputs).
    pub fn run_model_batch(&self, model: &str, pairs: &[(&str, &str)]) -> Result<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(ServerRequest::RunBatch {
                model: model.to_string(),
                pairs: pairs
                    .iter()
                    .map(|(i, o)| ((*i).to_string(), (*o).to_string()))
                    .collect(),
                reply: reply_tx,
            })
            .map_err(|_| RuntimeError::Disconnected)?;
        let results = reply_rx.recv().map_err(|_| RuntimeError::Disconnected)?;
        results.into_iter().find(|r| r.is_err()).unwrap_or(Ok(()))
    }

    /// Get the result of the model (Listing 1, line 9).
    pub fn unpack_tensor(&self, key: &str) -> Result<Vec<f64>> {
        self.store.get_dense(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_nn::{Mlp, Topology};
    use hpcnet_tensor::rng::seeded;

    fn serve_identity_like() -> Orchestrator {
        let orc = Orchestrator::launch(TensorStore::new());
        let mlp = Mlp::new(&Topology::mlp(vec![2, 3, 1]), &mut seeded(3, "cl")).unwrap();
        orc.register_model(
            "net",
            crate::server::ModelBundle {
                surrogate: mlp.into(),
                autoencoder: None,
                scaler: None,
                output_scaler: None,
            },
        );
        orc
    }

    #[test]
    fn listing1_flow_works_end_to_end() {
        let orc = serve_identity_like();
        let client = Client::connect(&orc);
        client.put_tensor("in", vec![0.4, -0.4]);
        client.run_model("net", "in", "out").unwrap();
        let out = client.unpack_tensor("out").unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn multiple_clients_share_one_server() {
        let orc = serve_identity_like();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let client = Client::connect(&orc);
                std::thread::spawn(move || {
                    let in_key = format!("in{t}");
                    let out_key = format!("out{t}");
                    client.put_tensor(&in_key, vec![t as f64, -1.0]);
                    client.run_model("net", &in_key, &out_key).unwrap();
                    client.unpack_tensor(&out_key).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().len(), 1);
        }
    }

    #[test]
    fn run_model_batch_serves_every_pair_bitwise() {
        let orc = serve_identity_like();
        let mlp = Mlp::new(&Topology::mlp(vec![2, 3, 1]), &mut seeded(3, "cl")).unwrap();
        let client = Client::connect(&orc);
        let inputs: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![0.3 * i as f64, -0.1 * i as f64])
            .collect();
        for (i, x) in inputs.iter().enumerate() {
            client.put_tensor(&format!("bin{i}"), x.clone());
        }
        let keys: Vec<(String, String)> = (0..6)
            .map(|i| (format!("bin{i}"), format!("bout{i}")))
            .collect();
        let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
        client.run_model_batch("net", &pairs).unwrap();
        for (i, x) in inputs.iter().enumerate() {
            assert_eq!(
                client.unpack_tensor(&format!("bout{i}")).unwrap(),
                mlp.predict(x).unwrap(),
                "pair {i} diverged from the single-sample path"
            );
        }
        assert_eq!(client.run_model_batch("net", &[]), Ok(()));
    }

    #[test]
    fn run_model_batch_reports_first_error_but_serves_the_rest() {
        let orc = serve_identity_like();
        let client = Client::connect(&orc);
        client.put_tensor("ok-in", vec![0.1, 0.2]);
        let err = client
            .run_model_batch("net", &[("ok-in", "ok-out"), ("missing-in", "missing-out")])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::MissingTensor(_)));
        assert_eq!(client.unpack_tensor("ok-out").unwrap().len(), 1);
    }

    #[test]
    fn unknown_model_surfaces_error_through_channel() {
        let orc = serve_identity_like();
        let client = Client::connect(&orc);
        client.put_tensor("in", vec![1.0, 2.0]);
        assert_eq!(
            client.run_model("ghost", "in", "out"),
            Err(RuntimeError::MissingModel("ghost".into()))
        );
    }
}
