//! Analytic device model.
//!
//! We have no V100s; the paper's GPU numbers (Fig. 5 speedups are vs a
//! 40-core CPU, Table 3 compares CPU / GPU-original / GPU-surrogate).
//! Every CPU time in this repo is real wall clock; every **GPU time is a
//! model output** from the roofline-style estimate below, clearly labeled
//! wherever printed. The model is calibrated to public V100 and Xeon
//! E5-2698v4 figures so the *ratios* (what Table 3's shape depends on)
//! are realistic.

use serde::{Deserialize, Serialize};

/// A device's roofline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Peak double-precision FLOP/s the workload can sustain.
    pub flops_per_sec: f64,
    /// Sustained memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Host-device transfer bandwidth, bytes/s (0 = no transfer needed).
    pub link_bw: f64,
    /// Fixed per-invocation latency (kernel launch, request overhead).
    pub latency_s: f64,
    /// Fraction of peak FLOP/s irregular (sparse/branchy) code sustains.
    pub irregular_efficiency: f64,
}

impl DeviceProfile {
    /// Dual Xeon E5-2698 v4 (40 cores), the paper's CPU baseline.
    pub fn xeon_40core() -> Self {
        DeviceProfile {
            flops_per_sec: 1.1e12,
            mem_bw: 140e9,
            link_bw: 0.0,
            latency_s: 0.0,
            irregular_efficiency: 0.08,
        }
    }

    /// NVIDIA V100 (Volta), the paper's accelerator.
    pub fn v100() -> Self {
        DeviceProfile {
            flops_per_sec: 7.0e12,
            mem_bw: 900e9,
            link_bw: 12e9, // PCIe gen3 effective
            latency_s: 8e-6,
            irregular_efficiency: 0.03,
        }
    }

    /// Estimated execution time for a kernel.
    ///
    /// * `flops` — arithmetic work,
    /// * `bytes` — device-memory traffic,
    /// * `transfer_bytes` — host-device transfer (input staging),
    /// * `regular` — dense/regular (NN inference) vs irregular
    ///   (sparse iterative solver) code. The paper's §7.1 explanation of
    ///   the surrogate's GPU win is exactly this regular-vs-irregular gap.
    pub fn estimate(
        &self,
        flops: u64,
        bytes: u64,
        transfer_bytes: u64,
        regular: bool,
    ) -> DeviceTime {
        let eff = if regular {
            1.0
        } else {
            self.irregular_efficiency
        };
        let compute = flops as f64 / (self.flops_per_sec * eff);
        let memory = bytes as f64 / self.mem_bw;
        let transfer = if self.link_bw > 0.0 {
            transfer_bytes as f64 / self.link_bw
        } else {
            0.0
        };
        DeviceTime {
            compute_s: compute.max(memory), // roofline: bound by the max
            transfer_s: transfer,
            latency_s: self.latency_s,
        }
    }
}

/// Modeled execution-time breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceTime {
    /// Roofline compute/memory time.
    pub compute_s: f64,
    /// Host-device transfer time.
    pub transfer_s: f64,
    /// Fixed launch latency.
    pub latency_s: f64,
}

impl DeviceTime {
    /// Total modeled seconds.
    pub fn total(&self) -> f64 {
        self.compute_s + self.transfer_s + self.latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_code_is_faster_than_irregular_at_equal_flops() {
        let v100 = DeviceProfile::v100();
        let nn = v100.estimate(1_000_000, 10_000, 0, true);
        let solver = v100.estimate(1_000_000, 10_000, 0, false);
        assert!(nn.total() < solver.total());
    }

    #[test]
    fn transfer_costs_show_up_only_with_a_link() {
        let cpu = DeviceProfile::xeon_40core();
        let gpu = DeviceProfile::v100();
        assert_eq!(cpu.estimate(1000, 0, 1 << 20, true).transfer_s, 0.0);
        assert!(gpu.estimate(1000, 0, 1 << 20, true).transfer_s > 0.0);
    }

    #[test]
    fn roofline_is_bandwidth_bound_for_low_intensity() {
        let gpu = DeviceProfile::v100();
        // 1 FLOP per 1000 bytes: memory-bound.
        let t = gpu.estimate(1_000, 1_000_000, 0, true);
        let memory_time = 1_000_000.0 / gpu.mem_bw;
        assert!((t.compute_s - memory_time).abs() / memory_time < 1e-9);
    }

    #[test]
    fn surrogate_on_gpu_beats_solver_on_cpu_in_the_model() {
        // The Fig. 5 shape: a small regular NN on GPU vs a large irregular
        // solver on CPU.
        let cpu = DeviceProfile::xeon_40core();
        let gpu = DeviceProfile::v100();
        let solver_cpu = cpu.estimate(50_000_000, 20_000_000, 0, false).total();
        let nn_gpu = gpu.estimate(500_000, 100_000, 50_000, true).total();
        assert!(
            solver_cpu / nn_gpu > 2.0,
            "modeled speedup {}",
            solver_cpu / nn_gpu
        );
    }
}
