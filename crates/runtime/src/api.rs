//! The client surface shared by every way of reaching an orchestrator.
//!
//! [`ClientApi`] is the paper's Listing 1 vocabulary — `put_tensor`,
//! `run_model`, `unpack_tensor` — abstracted over the transport, so an
//! application can be written once and pointed at either the in-process
//! [`crate::Client`] or a networked client (`hpcnet-net`'s
//! `RemoteClient`) without touching the call sites. The two are
//! behaviorally interchangeable: the remote path produces bit-identical
//! `run_model` outputs and surfaces the same typed [`RuntimeError`]
//! variants (`Overloaded`, `DeadlineExceeded`, `ShuttingDown`,
//! `QualityRejected`), plus [`RuntimeError::Transport`] when the network
//! itself fails.

use std::time::Duration;

use crate::Result;

/// The transport-agnostic request client: Listing 1's flow plus deletion
/// (for bounded-memory serving).
pub trait ClientApi {
    /// Put a dense input tensor on the database.
    fn put_tensor(&self, key: &str, value: &[f64]) -> Result<()>;

    /// Put a sparse input tensor on the database without densification.
    fn put_sparse_tensor(&self, key: &str, value: hpcnet_tensor::Csr) -> Result<()>;

    /// Run a registered model over `in_key`, storing the output under
    /// `out_key`. Blocks until the server replies.
    fn run_model(&self, model: &str, in_key: &str, out_key: &str) -> Result<()>;

    /// [`ClientApi::run_model`] with an explicit per-request deadline.
    fn run_model_with_deadline(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        deadline: Duration,
    ) -> Result<()>;

    /// Get a result tensor (densified if stored sparse).
    fn unpack_tensor(&self, key: &str) -> Result<Vec<f64>>;

    /// Delete a tensor; returns whether it existed.
    fn del_tensor(&self, key: &str) -> Result<bool>;
}
