//! The client surface shared by every way of reaching an orchestrator.
//!
//! [`ClientApi`] is the paper's Listing 1 vocabulary — `put_tensor`,
//! `run_model`, `unpack_tensor` — abstracted over the transport, so an
//! application can be written once and pointed at the in-process
//! [`crate::Client`], a networked client (`hpcnet-net`'s `RemoteClient`),
//! or a sharded fleet (`hpcnet-cluster`'s `ClusterClient`) without
//! touching the call sites. The implementations are behaviorally
//! interchangeable: every transport produces bit-identical `run_model`
//! outputs and surfaces the same typed [`RuntimeError`] variants
//! (`Overloaded`, `DeadlineExceeded`, `ShuttingDown`, `QualityRejected`),
//! plus [`RuntimeError::Transport`] when a network itself fails.
//!
//! # The v2 surface
//!
//! The first revision of this trait covered only the per-request flow,
//! which forced generic code to downcast for batching, health probes, or
//! observability. v2 promotes the whole production surface:
//!
//! * [`ClientApi::run_model_batch`] / [`ClientApi::run_model_batch_with_deadline`]
//!   — the batched hot path, with default implementations that loop
//!   [`ClientApi::run_model`] so small transports stay trivial to write;
//!   concrete clients override them (coalesced in-process, pipelined over
//!   TCP, scatter/gather across a cluster).
//! * [`ClientApi::serving_stats`] / [`ClientApi::metrics_text`] — the
//!   observability surface, fallible on every transport (an in-process
//!   client wraps its infallible snapshot in `Ok`).
//! * [`ClientApi::ping`] — the liveness/admission probe callers
//!   previously reached by downcasting to `RemoteClient::ping` or
//!   `Client::is_admitting`.
//!
//! Batch semantics are part of the contract and pinned by the shared
//! [`crate::conformance`] suite: an empty batch is `Ok(())`; a failing
//! pair does not abort the rest (every pair is attempted, every
//! successful pair stores its output) and the *first* error in pair
//! order is returned.

use std::time::{Duration, Instant};

use crate::{Result, RuntimeError, ServingStats};

/// The transport-agnostic request client: Listing 1's flow plus batching,
/// deletion (for bounded-memory serving), health probing, and the
/// observability surface.
pub trait ClientApi {
    /// Put a dense input tensor on the database.
    fn put_tensor(&self, key: &str, value: &[f64]) -> Result<()>;

    /// Put a sparse input tensor on the database without densification.
    fn put_sparse_tensor(&self, key: &str, value: hpcnet_tensor::Csr) -> Result<()>;

    /// Run a registered model over `in_key`, storing the output under
    /// `out_key`. Blocks until the server replies.
    fn run_model(&self, model: &str, in_key: &str, out_key: &str) -> Result<()>;

    /// [`ClientApi::run_model`] with an explicit per-request deadline.
    fn run_model_with_deadline(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        deadline: Duration,
    ) -> Result<()>;

    /// Run a model over many `(in_key, out_key)` pairs in one request.
    ///
    /// Contract (conformance-tested across every implementation):
    ///
    /// * an empty batch returns `Ok(())` without touching the server;
    /// * every pair is attempted — a failing pair never aborts the rest,
    ///   and each successful pair stores its output;
    /// * the first error *in pair order* is returned (or `Ok(())` when
    ///   every pair served).
    ///
    /// The default implementation loops [`ClientApi::run_model`];
    /// concrete clients override it with their transport's batched hot
    /// path (coalesced forward pass in-process, pipelined frames over
    /// TCP, scatter/gather across cluster shards).
    fn run_model_batch(&self, model: &str, pairs: &[(&str, &str)]) -> Result<()> {
        let mut first_err = None;
        for (in_key, out_key) in pairs {
            if let Err(e) = self.run_model(model, in_key, out_key) {
                first_err.get_or_insert(e);
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// [`ClientApi::run_model_batch`] with an explicit deadline covering
    /// the whole batch. A deadline that is already unreachable fails with
    /// [`RuntimeError::DeadlineExceeded`] before any transport work.
    ///
    /// The default implementation loops
    /// [`ClientApi::run_model_with_deadline`], charging each pair the
    /// time remaining on the whole-batch budget; once the budget is
    /// exhausted the remaining pairs are not attempted (they could only
    /// fail the same way) and `DeadlineExceeded` is recorded as their
    /// error.
    fn run_model_batch_with_deadline(
        &self,
        model: &str,
        pairs: &[(&str, &str)],
        deadline: Duration,
    ) -> Result<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        if deadline.is_zero() {
            return Err(RuntimeError::DeadlineExceeded);
        }
        let started = Instant::now();
        let mut first_err = None;
        for (in_key, out_key) in pairs {
            let remaining = deadline.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                first_err.get_or_insert(RuntimeError::DeadlineExceeded);
                break;
            }
            if let Err(e) = self.run_model_with_deadline(model, in_key, out_key, remaining) {
                first_err.get_or_insert(e);
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Get a result tensor (densified if stored sparse).
    fn unpack_tensor(&self, key: &str) -> Result<Vec<f64>>;

    /// Delete a tensor; returns whether it existed.
    fn del_tensor(&self, key: &str) -> Result<bool>;

    /// Liveness/admission probe. `Ok(())` means the serving side is
    /// reachable *and* admitting requests: the in-process client checks
    /// the orchestrator's admission flag ([`RuntimeError::ShuttingDown`]
    /// once draining), networked clients round-trip a `PING` frame
    /// ([`RuntimeError::Transport`] when unreachable), and a cluster
    /// client reports `Ok` while at least one endpoint is serving.
    fn ping(&self) -> Result<()>;

    /// Snapshot of cumulative serving statistics, as observed through
    /// this client. For single-server transports this is the
    /// orchestrator's own view; a cluster client returns the merged
    /// rollup across its endpoints.
    fn serving_stats(&self) -> Result<ServingStats>;

    /// Prometheus text exposition of the serving telemetry reachable
    /// through this client. Single-server transports expose the
    /// orchestrator's registry (serving and `hpcnet_net_*` series); a
    /// cluster client exposes its own `hpcnet_cluster_*` routing series.
    fn metrics_text(&self) -> Result<String>;

    /// Recent request traces retained by the flight recorder(s)
    /// reachable through this client, oldest first (DESIGN.md §16). The
    /// in-process client reads the orchestrator's recorder directly;
    /// the networked client merges its local client-side spans with the
    /// server's dump (fetched via the v2 `Traces` op); the cluster
    /// client merges its routing spans with every endpoint's dump.
    /// Conformance pins the shape across all three: a root span, the
    /// stage children, and retained error traces. The default returns
    /// no traces so minimal transports stay trivial to write.
    fn trace_dump(&self) -> Result<Vec<hpcnet_telemetry::Trace>> {
        Ok(Vec::new())
    }

    /// Served version per model, as observed through this client
    /// (DESIGN.md §17): 1 at first registration, +1 per re-registration
    /// and per accepted online hot-swap; a rollback reinstalls the
    /// previous, lower version. A cluster client reports the per-model
    /// maximum across its shards, so version skew inside a fleet is
    /// visible as a shard lagging the rollup.
    ///
    /// The default derives the map from [`ClientApi::serving_stats`]
    /// (the `hpcnet_model_version` gauges), which every transport —
    /// including a v1-protocol remote, whose legacy stats JSON simply
    /// lacks the field — degrades to an empty map rather than an error.
    /// Telemetry-off orchestrators also read as empty here; use
    /// [`crate::Orchestrator::model_versions`] server-side for the
    /// registry's own view.
    fn model_versions(&self) -> Result<std::collections::HashMap<String, u64>> {
        Ok(self.serving_stats()?.model_versions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A minimal transport that implements only the required methods, so
    /// the default batch implementations are what gets exercised.
    struct LoopClient {
        /// `(in_key, outcome)` table; a missing key is `MissingTensor`.
        served: RefCell<Vec<String>>,
        fail_on: Vec<String>,
        delay: Duration,
    }

    impl LoopClient {
        fn new(fail_on: &[&str]) -> Self {
            LoopClient {
                served: RefCell::new(Vec::new()),
                fail_on: fail_on.iter().map(|s| s.to_string()).collect(),
                delay: Duration::ZERO,
            }
        }
    }

    impl ClientApi for LoopClient {
        fn put_tensor(&self, _key: &str, _value: &[f64]) -> Result<()> {
            Ok(())
        }
        fn put_sparse_tensor(&self, _key: &str, _value: hpcnet_tensor::Csr) -> Result<()> {
            Ok(())
        }
        fn run_model(&self, _model: &str, in_key: &str, _out_key: &str) -> Result<()> {
            std::thread::sleep(self.delay);
            if self.fail_on.iter().any(|k| k == in_key) {
                return Err(RuntimeError::MissingTensor(in_key.into()));
            }
            self.served.borrow_mut().push(in_key.to_string());
            Ok(())
        }
        fn run_model_with_deadline(
            &self,
            model: &str,
            in_key: &str,
            out_key: &str,
            deadline: Duration,
        ) -> Result<()> {
            if deadline.is_zero() {
                return Err(RuntimeError::DeadlineExceeded);
            }
            self.run_model(model, in_key, out_key)
        }
        fn unpack_tensor(&self, key: &str) -> Result<Vec<f64>> {
            Err(RuntimeError::MissingTensor(key.into()))
        }
        fn del_tensor(&self, _key: &str) -> Result<bool> {
            Ok(false)
        }
        fn ping(&self) -> Result<()> {
            Ok(())
        }
        fn serving_stats(&self) -> Result<ServingStats> {
            let mut stats = ServingStats::default();
            stats.model_versions.insert("m".to_string(), 3);
            Ok(stats)
        }
        fn metrics_text(&self) -> Result<String> {
            Ok(String::new())
        }
    }

    #[test]
    fn default_batch_loops_and_reports_first_error_in_pair_order() {
        let c = LoopClient::new(&["b", "c"]);
        let err = c
            .run_model_batch("m", &[("a", "ao"), ("b", "bo"), ("c", "co"), ("d", "do")])
            .unwrap_err();
        // First error in pair order, later failures masked...
        assert_eq!(err, RuntimeError::MissingTensor("b".into()));
        // ...but every non-failing pair was still attempted.
        assert_eq!(*c.served.borrow(), vec!["a", "d"]);
        assert_eq!(c.run_model_batch("m", &[]), Ok(()));
    }

    #[test]
    fn default_deadline_batch_charges_one_budget() {
        let c = LoopClient::new(&[]);
        assert_eq!(
            c.run_model_batch_with_deadline("m", &[("a", "ao")], Duration::ZERO),
            Err(RuntimeError::DeadlineExceeded)
        );
        // Empty batches succeed even with an expired budget.
        assert_eq!(
            c.run_model_batch_with_deadline("m", &[], Duration::ZERO),
            Ok(())
        );
        // A generous budget serves everything.
        c.run_model_batch_with_deadline("m", &[("a", "ao"), ("d", "do")], Duration::from_secs(5))
            .unwrap();
        assert_eq!(*c.served.borrow(), vec!["a", "d"]);
    }

    #[test]
    fn default_model_versions_derives_from_serving_stats() {
        let c = LoopClient::new(&[]);
        let versions = c.model_versions().unwrap();
        assert_eq!(versions.get("m"), Some(&3));
    }

    #[test]
    fn default_deadline_batch_stops_once_budget_exhausted() {
        let mut c = LoopClient::new(&[]);
        c.delay = Duration::from_millis(30);
        // 30 ms per pair against a 40 ms whole-batch budget: the first
        // pair serves, a later pair hits the exhausted budget, and the
        // batch reports DeadlineExceeded without attempting the tail.
        let err = c
            .run_model_batch_with_deadline(
                "m",
                &[("a", "ao"), ("b", "bo"), ("c", "co"), ("d", "do")],
                Duration::from_millis(40),
            )
            .unwrap_err();
        assert_eq!(err, RuntimeError::DeadlineExceeded);
        let served = c.served.borrow();
        assert!(served.len() < 4, "budget should cut the batch short");
        assert_eq!(served[0], "a");
    }
}
