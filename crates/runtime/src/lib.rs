//! Online-inference runtime (paper §6.3): the SmartSim-Orchestrator /
//! RedisAI substitute.
//!
//! The paper couples HPC applications (C/Fortran) with NN frameworks
//! (Python) through an in-memory Redis store plus RedisAI, accessed via a
//! lightweight request client (Listings 1–2). This crate reproduces that
//! architecture in-process:
//!
//! * [`store::TensorStore`] — the keyed in-memory tensor storage
//!   (`put_tensor` / `get_tensor` / `unpack_tensor`),
//! * [`server::Orchestrator`] — the inference server holding the model
//!   registry and executing `run_model` / `run_model_batch` requests on a
//!   worker pool that coalesces queued requests into batched forward
//!   passes,
//! * [`client::Client`] — the application-side request client mirroring
//!   Listing 1's `put_tensor` → `run_model` → `unpack_tensor` flow,
//! * [`device`] — an analytic device model (CPU / V100-class GPU) used for
//!   the GPU columns of Fig. 5 and Table 3 (we have no GPU; every GPU
//!   number is clearly a model output — see DESIGN.md),
//! * [`perf`] — exact FLOP counters and a set-associative cache simulator
//!   regenerating Table 3's counter study.

pub mod client;
pub mod device;
pub mod perf;
pub mod server;
pub mod store;

pub use client::Client;
pub use device::{DeviceProfile, DeviceTime};
pub use perf::{CacheSim, PerfReport, ServingStats};
pub use server::{ModelBundle, OnlineTimers, Orchestrator};
pub use store::TensorStore;

/// Errors from the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A tensor key was missing from the store.
    MissingTensor(String),
    /// A model name was not registered.
    MissingModel(String),
    /// The inference failed (shape mismatch etc.).
    Inference(String),
    /// The orchestrator thread is gone.
    Disconnected,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::MissingTensor(k) => write!(f, "no tensor under key `{k}`"),
            RuntimeError::MissingModel(m) => write!(f, "no model named `{m}`"),
            RuntimeError::Inference(m) => write!(f, "inference failed: {m}"),
            RuntimeError::Disconnected => write!(f, "orchestrator disconnected"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
