//! Online-inference runtime (paper §6.3): the SmartSim-Orchestrator /
//! RedisAI substitute.
//!
//! The paper couples HPC applications (C/Fortran) with NN frameworks
//! (Python) through an in-memory Redis store plus RedisAI, accessed via a
//! lightweight request client (Listings 1–2). This crate reproduces that
//! architecture in-process:
//!
//! * [`store::TensorStore`] — the keyed in-memory tensor storage
//!   (`put_tensor` / `get_tensor` / `unpack_tensor`), with [`TensorKey`]
//!   as the validated key type at the client/server boundary,
//! * [`server::Orchestrator`] — the inference server holding the model
//!   registry and executing `run_model` / `run_model_batch` requests on a
//!   worker pool that coalesces queued requests into batched forward
//!   passes. Admission is bounded ([`RuntimeError::Overloaded`]),
//!   requests carry deadlines ([`RuntimeError::DeadlineExceeded`]), and
//!   shutdown drains in-flight work ([`RuntimeError::ShuttingDown`]).
//!   A registered model may carry a [`QualityGuard`] so the server itself
//!   performs the paper's restart-on-quality-miss (§7.1/§8),
//! * [`client::Client`] — the application-side request client mirroring
//!   Listing 1's `put_tensor` → `run_model` → `unpack_tensor` flow, with
//!   every call fallible,
//! * [`device`] — an analytic device model (CPU / V100-class GPU) used for
//!   the GPU columns of Fig. 5 and Table 3 (we have no GPU; every GPU
//!   number is clearly a model output — see DESIGN.md),
//! * [`perf`] — exact FLOP counters and a set-associative cache simulator
//!   regenerating Table 3's counter study,
//! * [`metrics`] — the serving telemetry surface (DESIGN.md §11): every
//!   orchestrator owns a private `hpcnet_telemetry::Registry` with
//!   queue-wait and per-stage latency histograms per model, exported via
//!   [`Orchestrator::metrics_text`] / [`Orchestrator::metrics_snapshot`],
//! * [`conformance`] — the shared [`ClientApi`] conformance suite every
//!   transport's tests run (in-process here, TCP in `hpcnet-net`,
//!   sharded in `hpcnet-cluster`), pinning the v2 contract executably.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod api;
pub mod client;
pub mod conformance;
pub mod device;
pub mod metrics;
pub mod perf;
mod retrain;
pub mod server;
pub mod store;

pub use api::ClientApi;
pub use client::Client;
pub use device::{DeviceProfile, DeviceTime};
pub use hpcnet_online::RetrainConfig;
pub use hpcnet_telemetry::{
    Event, HistogramSnapshot, RegistrySnapshot, SpanRecord, SpanStatus, Trace, TraceContext,
    TraceId,
};
pub use perf::{CacheSim, PerfReport, ServingStats};
pub use server::{ModelBundle, OnlineTimers, Orchestrator, OrchestratorBuilder, QualityGuard};
pub use store::{TensorKey, TensorStore};

/// Errors from the runtime.
///
/// The serving runtime makes every failure mode of the request path a
/// distinct, matchable variant: storage misses, model misses, inference
/// faults, admission-control rejections ([`RuntimeError::Overloaded`]),
/// deadline misses ([`RuntimeError::DeadlineExceeded`]), shutdown
/// ([`RuntimeError::ShuttingDown`]), and server-side quality rejection
/// ([`RuntimeError::QualityRejected`]).
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A tensor key was missing from the store.
    MissingTensor(String),
    /// A model name was not registered.
    MissingModel(String),
    /// The inference failed (shape mismatch etc.).
    Inference(String),
    /// A tensor key failed validation (empty, or longer than
    /// [`store::MAX_KEY_BYTES`] bytes).
    InvalidKey(String),
    /// The bounded admission queue was full; the request was rejected at
    /// enqueue time instead of growing the backlog. Carries the
    /// configured queue depth so callers can size their retry policy.
    Overloaded {
        /// Admission-queue capacity the orchestrator was built with.
        queue_depth: usize,
    },
    /// The request's deadline passed before it executed. Raised at
    /// enqueue time when the deadline is already unreachable, and by the
    /// worker pool when a queued request expires before its coalesced
    /// batch runs — expired requests are always answered, never dropped.
    DeadlineExceeded,
    /// The orchestrator is draining and no longer admits new requests.
    ShuttingDown,
    /// The server-side quality guard rejected the surrogate output and no
    /// fallback region was registered to restart with.
    QualityRejected(String),
    /// The orchestrator thread is gone.
    Disconnected,
    /// The network transport to a remote orchestrator failed (connect,
    /// read, or write) after the client's retry budget was exhausted.
    /// Callers should treat this as "the service is unreachable" and fall
    /// back to the original solver (the paper's restart semantics).
    Transport(String),
    /// A wire-protocol violation: a malformed, corrupted, or
    /// version-incompatible frame on the network boundary.
    Protocol(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::MissingTensor(k) => write!(f, "no tensor under key `{k}`"),
            RuntimeError::MissingModel(m) => write!(f, "no model named `{m}`"),
            RuntimeError::Inference(m) => write!(f, "inference failed: {m}"),
            RuntimeError::InvalidKey(k) => write!(f, "invalid tensor key: {k}"),
            RuntimeError::Overloaded { queue_depth } => {
                write!(f, "admission queue full (depth {queue_depth})")
            }
            RuntimeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            RuntimeError::ShuttingDown => write!(f, "orchestrator is shutting down"),
            RuntimeError::QualityRejected(m) => {
                write!(f, "quality guard rejected surrogate output: {m}")
            }
            RuntimeError::Disconnected => write!(f, "orchestrator disconnected"),
            RuntimeError::Transport(m) => write!(f, "transport failed: {m}"),
            RuntimeError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<hpcnet_nn::NnError> for RuntimeError {
    fn from(e: hpcnet_nn::NnError) -> Self {
        RuntimeError::Inference(e.to_string())
    }
}

impl From<hpcnet_tensor::TensorError> for RuntimeError {
    fn from(e: hpcnet_tensor::TensorError) -> Self {
        RuntimeError::Inference(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_stable() {
        assert_eq!(
            RuntimeError::Overloaded { queue_depth: 4 }.to_string(),
            "admission queue full (depth 4)"
        );
        assert_eq!(
            RuntimeError::DeadlineExceeded.to_string(),
            "request deadline exceeded"
        );
        assert_eq!(
            RuntimeError::ShuttingDown.to_string(),
            "orchestrator is shutting down"
        );
        assert!(RuntimeError::QualityRejected("residual too large".into())
            .to_string()
            .contains("residual too large"));
    }

    #[test]
    fn nn_and_tensor_errors_convert_to_inference() {
        let nn = hpcnet_nn::NnError::BadData("short row".into());
        assert!(matches!(
            RuntimeError::from(nn),
            RuntimeError::Inference(m) if m.contains("short row")
        ));
        let te = hpcnet_tensor::TensorError::ShapeMismatch(2, 3, "test");
        assert!(matches!(RuntimeError::from(te), RuntimeError::Inference(_)));
    }
}
