//! The in-memory keyed tensor store (the Redis substitute), and the
//! validated [`TensorKey`] used at the client/server boundary.
//!
//! The store is unbounded by default (the historical behavior). A
//! long-running server fronting remote clients should cap it with
//! [`TensorStore::with_max_entries`]: inserts beyond the cap evict the
//! least-recently-used key, where both inserts and reads count as use.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::{Result, RuntimeError};

/// Maximum accepted tensor-key length in bytes.
pub const MAX_KEY_BYTES: usize = 512;

/// A validated tensor key: non-empty and at most [`MAX_KEY_BYTES`] bytes.
///
/// The redesigned client/orchestrator API moves key validation to the
/// boundary: requests travel through the worker pool carrying `TensorKey`s
/// that are known-good, so the hot path never re-checks them.
///
/// ```
/// use hpcnet_runtime::TensorKey;
/// let key = TensorKey::new("input_feature").unwrap();
/// assert_eq!(key.as_str(), "input_feature");
/// assert!(TensorKey::new("").is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorKey(String);

impl TensorKey {
    /// Validate and wrap a key.
    pub fn new(key: impl Into<String>) -> Result<Self> {
        let key = key.into();
        if key.is_empty() {
            return Err(RuntimeError::InvalidKey("empty key".into()));
        }
        if key.len() > MAX_KEY_BYTES {
            return Err(RuntimeError::InvalidKey(format!(
                "key is {} bytes, max {MAX_KEY_BYTES}",
                key.len()
            )));
        }
        Ok(TensorKey(key))
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TensorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for TensorKey {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl TryFrom<&str> for TensorKey {
    type Error = RuntimeError;

    fn try_from(s: &str) -> Result<Self> {
        TensorKey::new(s)
    }
}

impl From<TensorKey> for String {
    fn from(k: TensorKey) -> String {
        k.0
    }
}

/// A tensor value: either a dense vector or a CSR single-row sparse
/// tensor (the store is format-agnostic, like RedisAI with a sparse
/// module loaded).
#[derive(Debug, Clone)]
pub enum TensorValue {
    /// Dense row.
    Dense(Vec<f64>),
    /// Sparse row (CSR with one row).
    Sparse(hpcnet_tensor::Csr),
}

impl TensorValue {
    /// Logical width of the tensor.
    pub fn width(&self) -> usize {
        match self {
            TensorValue::Dense(v) => v.len(),
            TensorValue::Sparse(c) => c.ncols(),
        }
    }

    /// Bytes this tensor occupies in the store (the data-loading cost the
    /// speedup formula's `T_data_load` charges).
    pub fn stored_bytes(&self) -> usize {
        match self {
            TensorValue::Dense(v) => v.len() * 8,
            TensorValue::Sparse(c) => c.nnz() * 16 + (c.nrows() + 1) * 8,
        }
    }
}

/// One stored tensor plus its recency stamp (for LRU eviction).
#[derive(Debug)]
struct Slot {
    value: TensorValue,
    tick: u64,
}

/// The store's guts: the key → value map, a recency index (tick → key,
/// oldest first), the monotonically increasing tick, and the optional
/// entry cap.
#[derive(Debug, Default)]
struct StoreInner {
    entries: HashMap<String, Slot>,
    order: BTreeMap<u64, String>,
    tick: u64,
    max_entries: Option<usize>,
}

impl StoreInner {
    /// Stamp a slot as most-recently-used, keeping `order` in sync.
    fn touch(&mut self, key: &str) {
        if let Some(slot) = self.entries.get_mut(key) {
            self.order.remove(&slot.tick);
            self.tick += 1;
            slot.tick = self.tick;
            self.order.insert(self.tick, key.to_string());
        }
    }

    fn insert(&mut self, key: &str, value: TensorValue) {
        if let Some(old) = self.entries.get(key) {
            self.order.remove(&old.tick);
        }
        self.tick += 1;
        self.order.insert(self.tick, key.to_string());
        self.entries.insert(
            key.to_string(),
            Slot {
                value,
                tick: self.tick,
            },
        );
        if let Some(cap) = self.max_entries {
            // The just-inserted key carries the newest tick, so it is
            // never the eviction victim even when cap == 1.
            while self.entries.len() > cap {
                let Some((&oldest, _)) = self.order.iter().next() else {
                    break;
                };
                if let Some(victim) = self.order.remove(&oldest) {
                    self.entries.remove(&victim);
                }
            }
        }
    }

    fn remove(&mut self, key: &str) -> bool {
        match self.entries.remove(key) {
            Some(slot) => {
                self.order.remove(&slot.tick);
                true
            }
            None => false,
        }
    }
}

/// Thread-safe keyed tensor storage shared by clients and the server.
#[derive(Debug, Clone, Default)]
pub struct TensorStore {
    inner: Arc<RwLock<StoreInner>>,
}

impl TensorStore {
    /// Fresh empty store with no entry cap.
    pub fn new() -> Self {
        TensorStore::default()
    }

    /// Fresh empty store holding at most `cap` tensors (clamped to ≥ 1):
    /// inserting beyond the cap evicts the least-recently-used key.
    /// Reads through [`TensorStore::get`]/[`TensorStore::get_dense`]
    /// count as use.
    pub fn with_max_entries(cap: usize) -> Self {
        let store = TensorStore::default();
        store.inner.write().max_entries = Some(cap.max(1));
        store
    }

    /// The entry cap, if one was set.
    pub fn max_entries(&self) -> Option<usize> {
        self.inner.read().max_entries
    }

    /// Store a dense tensor under a key (overwrites).
    pub fn put_dense(&self, key: &str, value: Vec<f64>) {
        self.inner.write().insert(key, TensorValue::Dense(value));
    }

    /// Store a sparse tensor under a key (overwrites).
    pub fn put_sparse(&self, key: &str, value: hpcnet_tensor::Csr) {
        self.inner.write().insert(key, TensorValue::Sparse(value));
    }

    /// Fetch a tensor by key. On a capped store this refreshes the key's
    /// recency (and therefore takes the write lock).
    pub fn get(&self, key: &str) -> Result<TensorValue> {
        if self.max_entries().is_some() {
            let mut inner = self.inner.write();
            inner.touch(key);
            return inner
                .entries
                .get(key)
                .map(|s| s.value.clone())
                .ok_or_else(|| RuntimeError::MissingTensor(key.to_string()));
        }
        self.inner
            .read()
            .entries
            .get(key)
            .map(|s| s.value.clone())
            .ok_or_else(|| RuntimeError::MissingTensor(key.to_string()))
    }

    /// Fetch a dense tensor, densifying a sparse one if needed.
    pub fn get_dense(&self, key: &str) -> Result<Vec<f64>> {
        match self.get(key)? {
            TensorValue::Dense(v) => Ok(v),
            TensorValue::Sparse(c) => Ok(c.to_dense_vector()),
        }
    }

    /// Remove a tensor; returns whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        self.inner.write().remove(key)
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.inner.read().entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::Coo;

    #[test]
    fn tensor_key_validation() {
        assert!(TensorKey::new("ok").is_ok());
        assert_eq!(
            TensorKey::new(""),
            Err(RuntimeError::InvalidKey("empty key".into()))
        );
        let long = "k".repeat(MAX_KEY_BYTES + 1);
        assert!(matches!(
            TensorKey::new(long),
            Err(RuntimeError::InvalidKey(_))
        ));
        let k = TensorKey::try_from("x").unwrap();
        assert_eq!(k.to_string(), "x");
        assert_eq!(String::from(k), "x");
    }

    #[test]
    fn put_get_roundtrip() {
        let store = TensorStore::new();
        store.put_dense("x", vec![1.0, 2.0]);
        assert_eq!(store.get_dense("x").unwrap(), vec![1.0, 2.0]);
        assert_eq!(store.len(), 1);
        assert!(store.delete("x"));
        assert!(store.is_empty());
    }

    #[test]
    fn missing_key_errors() {
        let store = TensorStore::new();
        assert_eq!(
            store.get_dense("ghost"),
            Err(RuntimeError::MissingTensor("ghost".into()))
        );
    }

    #[test]
    fn sparse_tensor_densifies_on_demand() {
        let store = TensorStore::new();
        let mut coo = Coo::new(1, 5);
        coo.push(0, 2, 7.0);
        store.put_sparse("s", coo.to_csr());
        assert_eq!(store.get_dense("s").unwrap(), vec![0.0, 0.0, 7.0, 0.0, 0.0]);
        let v = store.get("s").unwrap();
        assert_eq!(v.width(), 5);
        assert!(v.stored_bytes() < 5 * 8 * 2);
    }

    #[test]
    fn capped_store_evicts_least_recently_used() {
        let store = TensorStore::with_max_entries(3);
        assert_eq!(store.max_entries(), Some(3));
        store.put_dense("a", vec![1.0]);
        store.put_dense("b", vec![2.0]);
        store.put_dense("c", vec![3.0]);
        // Touch "a" so "b" becomes the LRU victim.
        store.get_dense("a").unwrap();
        store.put_dense("d", vec![4.0]);
        assert_eq!(store.len(), 3);
        assert!(store.get_dense("b").is_err(), "LRU key evicted");
        for k in ["a", "c", "d"] {
            assert!(store.get_dense(k).is_ok(), "key {k} survives");
        }
    }

    #[test]
    fn capped_store_overwrite_does_not_evict() {
        let store = TensorStore::with_max_entries(2);
        store.put_dense("a", vec![1.0]);
        store.put_dense("b", vec![2.0]);
        store.put_dense("a", vec![9.0]); // overwrite, len stays 2
        assert_eq!(store.len(), 2);
        assert_eq!(store.get_dense("a").unwrap(), vec![9.0]);
        assert_eq!(store.get_dense("b").unwrap(), vec![2.0]);
        // cap == 1 never evicts the key being inserted.
        let one = TensorStore::with_max_entries(0); // clamped to 1
        one.put_dense("x", vec![1.0]);
        one.put_dense("y", vec![2.0]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.get_dense("y").unwrap(), vec![2.0]);
    }

    #[test]
    fn delete_keeps_recency_index_consistent() {
        let store = TensorStore::with_max_entries(2);
        store.put_dense("a", vec![1.0]);
        store.put_dense("b", vec![2.0]);
        assert!(store.delete("a"));
        assert!(!store.delete("a"));
        store.put_dense("c", vec![3.0]);
        store.put_dense("d", vec![4.0]);
        assert_eq!(store.len(), 2);
        assert!(store.get_dense("b").is_err(), "b was the LRU entry");
        assert!(store.get_dense("c").is_ok());
        assert!(store.get_dense("d").is_ok());
    }

    #[test]
    fn concurrent_writers_land_consistently() {
        let store = TensorStore::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = store.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        s.put_dense(&format!("k{t}_{i}"), vec![t as f64, i as f64]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 400);
        assert_eq!(store.get_dense("k3_7").unwrap(), vec![3.0, 7.0]);
    }
}
