//! The in-memory keyed tensor store (the Redis substitute), and the
//! validated [`TensorKey`] used at the client/server boundary.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::{Result, RuntimeError};

/// Maximum accepted tensor-key length in bytes.
pub const MAX_KEY_BYTES: usize = 512;

/// A validated tensor key: non-empty and at most [`MAX_KEY_BYTES`] bytes.
///
/// The redesigned client/orchestrator API moves key validation to the
/// boundary: requests travel through the worker pool carrying `TensorKey`s
/// that are known-good, so the hot path never re-checks them.
///
/// ```
/// use hpcnet_runtime::TensorKey;
/// let key = TensorKey::new("input_feature").unwrap();
/// assert_eq!(key.as_str(), "input_feature");
/// assert!(TensorKey::new("").is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorKey(String);

impl TensorKey {
    /// Validate and wrap a key.
    pub fn new(key: impl Into<String>) -> Result<Self> {
        let key = key.into();
        if key.is_empty() {
            return Err(RuntimeError::InvalidKey("empty key".into()));
        }
        if key.len() > MAX_KEY_BYTES {
            return Err(RuntimeError::InvalidKey(format!(
                "key is {} bytes, max {MAX_KEY_BYTES}",
                key.len()
            )));
        }
        Ok(TensorKey(key))
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TensorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for TensorKey {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl TryFrom<&str> for TensorKey {
    type Error = RuntimeError;

    fn try_from(s: &str) -> Result<Self> {
        TensorKey::new(s)
    }
}

impl From<TensorKey> for String {
    fn from(k: TensorKey) -> String {
        k.0
    }
}

/// A tensor value: either a dense vector or a CSR single-row sparse
/// tensor (the store is format-agnostic, like RedisAI with a sparse
/// module loaded).
#[derive(Debug, Clone)]
pub enum TensorValue {
    /// Dense row.
    Dense(Vec<f64>),
    /// Sparse row (CSR with one row).
    Sparse(hpcnet_tensor::Csr),
}

impl TensorValue {
    /// Logical width of the tensor.
    pub fn width(&self) -> usize {
        match self {
            TensorValue::Dense(v) => v.len(),
            TensorValue::Sparse(c) => c.ncols(),
        }
    }

    /// Bytes this tensor occupies in the store (the data-loading cost the
    /// speedup formula's `T_data_load` charges).
    pub fn stored_bytes(&self) -> usize {
        match self {
            TensorValue::Dense(v) => v.len() * 8,
            TensorValue::Sparse(c) => c.nnz() * 16 + (c.nrows() + 1) * 8,
        }
    }
}

/// Thread-safe keyed tensor storage shared by clients and the server.
#[derive(Debug, Clone, Default)]
pub struct TensorStore {
    inner: Arc<RwLock<HashMap<String, TensorValue>>>,
}

impl TensorStore {
    /// Fresh empty store.
    pub fn new() -> Self {
        TensorStore::default()
    }

    /// Store a dense tensor under a key (overwrites).
    pub fn put_dense(&self, key: &str, value: Vec<f64>) {
        self.inner
            .write()
            .insert(key.to_string(), TensorValue::Dense(value));
    }

    /// Store a sparse tensor under a key (overwrites).
    pub fn put_sparse(&self, key: &str, value: hpcnet_tensor::Csr) {
        self.inner
            .write()
            .insert(key.to_string(), TensorValue::Sparse(value));
    }

    /// Fetch a tensor by key.
    pub fn get(&self, key: &str) -> Result<TensorValue> {
        self.inner
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| RuntimeError::MissingTensor(key.to_string()))
    }

    /// Fetch a dense tensor, densifying a sparse one if needed.
    pub fn get_dense(&self, key: &str) -> Result<Vec<f64>> {
        match self.get(key)? {
            TensorValue::Dense(v) => Ok(v),
            TensorValue::Sparse(c) => Ok(c.to_dense_vector()),
        }
    }

    /// Remove a tensor; returns whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        self.inner.write().remove(key).is_some()
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::Coo;

    #[test]
    fn tensor_key_validation() {
        assert!(TensorKey::new("ok").is_ok());
        assert_eq!(
            TensorKey::new(""),
            Err(RuntimeError::InvalidKey("empty key".into()))
        );
        let long = "k".repeat(MAX_KEY_BYTES + 1);
        assert!(matches!(
            TensorKey::new(long),
            Err(RuntimeError::InvalidKey(_))
        ));
        let k = TensorKey::try_from("x").unwrap();
        assert_eq!(k.to_string(), "x");
        assert_eq!(String::from(k), "x");
    }

    #[test]
    fn put_get_roundtrip() {
        let store = TensorStore::new();
        store.put_dense("x", vec![1.0, 2.0]);
        assert_eq!(store.get_dense("x").unwrap(), vec![1.0, 2.0]);
        assert_eq!(store.len(), 1);
        assert!(store.delete("x"));
        assert!(store.is_empty());
    }

    #[test]
    fn missing_key_errors() {
        let store = TensorStore::new();
        assert_eq!(
            store.get_dense("ghost"),
            Err(RuntimeError::MissingTensor("ghost".into()))
        );
    }

    #[test]
    fn sparse_tensor_densifies_on_demand() {
        let store = TensorStore::new();
        let mut coo = Coo::new(1, 5);
        coo.push(0, 2, 7.0);
        store.put_sparse("s", coo.to_csr());
        assert_eq!(store.get_dense("s").unwrap(), vec![0.0, 0.0, 7.0, 0.0, 0.0]);
        let v = store.get("s").unwrap();
        assert_eq!(v.width(), 5);
        assert!(v.stored_bytes() < 5 * 8 * 2);
    }

    #[test]
    fn concurrent_writers_land_consistently() {
        let store = TensorStore::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = store.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        s.put_dense(&format!("k{t}_{i}"), vec![t as f64, i as f64]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 400);
        assert_eq!(store.get_dense("k3_7").unwrap(), vec![3.0, 7.0]);
    }
}
