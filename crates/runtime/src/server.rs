//! The inference server ("Orchestrator"): model registry + a worker pool
//! with request coalescing, bounded admission, request deadlines, graceful
//! drain, and server-side quality guarding.
//!
//! Workers block on a shared request channel; on wake-up each worker
//! drains whatever else is already queued (up to [`MAX_COALESCE`]
//! requests), groups the drained requests by model name, and executes one
//! batched forward pass per group — the process-local analog of dynamic
//! batching in a GPU-side inference server. Batched outputs are
//! bit-identical to the single-sample path because every kernel on the
//! path treats rows independently in the same accumulation order.
//!
//! Robustness semantics (DESIGN.md §10):
//!
//! * the admission queue is **bounded** — a full queue rejects new
//!   requests with [`RuntimeError::Overloaded`] instead of growing,
//! * every request may carry a **deadline** — checked at enqueue and
//!   again before its coalesced batch runs; expired requests are answered
//!   with [`RuntimeError::DeadlineExceeded`], never silently dropped,
//! * [`Orchestrator::shutdown`] (and `Drop`) **drains**: in-flight and
//!   already-queued requests complete, new ones are refused with
//!   [`RuntimeError::ShuttingDown`],
//! * a registered model may carry a [`QualityGuard`] — the paper's
//!   restart-on-quality-miss (§7.1/§8) executed server-side: a validator
//!   inspects every surrogate output and a fallback closure (the original
//!   region) answers when the validator rejects,
//! * an orchestrator built with [`OrchestratorBuilder::serve_f32`]`(true)`
//!   quantizes every registered MLP bundle to `f32` kernels at
//!   registration and serves batches through them; a registered
//!   [`QualityGuard`] demotes any rejected `f32` output back to the `f64`
//!   surrogate per request before its usual fallback/reject semantics
//!   (DESIGN.md §14),
//! * every orchestrator owns a private telemetry registry (DESIGN.md §11):
//!   per-request queue-wait and per-stage (fetch / encode / infer / guard /
//!   fallback) latency histograms per model, exported via
//!   [`Orchestrator::metrics_text`] (Prometheus) and
//!   [`Orchestrator::metrics_snapshot`] (JSON-able), with anomalies
//!   retained in a bounded event ring. Disable with
//!   [`OrchestratorBuilder::telemetry`]`(false)`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use hpcnet_nn::train::FeatureScaler;
use hpcnet_nn::{Autoencoder, MlpF32, SurrogateNet};
use hpcnet_telemetry::trace::{self, stage_names, tags};
use hpcnet_telemetry::{
    FlightRecorderConfig, RegistrySnapshot, SpanRecord, Trace, TraceContext, TraceId,
};
use hpcnet_tensor::{Csr, Matrix, MatrixF32};
use parking_lot::{Mutex, RwLock};

use crate::client::Client;
use crate::metrics::{
    ServingMetrics, StageTimes, EVENT_F32_DEMOTED, EVENT_QUALITY_FALLBACK, EVENT_QUALITY_REJECTED,
};
use crate::perf::ServingStats;
use crate::retrain::{self, OnlineState};
use crate::store::{TensorKey, TensorStore, TensorValue};
use crate::{Result, RuntimeError};
use hpcnet_online::RetrainConfig;

/// Everything needed to serve one surrogate: the trained network (MLP or
/// CNN), the optional feature-reduction encoder, and the scalers fitted at
/// training time.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// The surrogate network.
    pub surrogate: SurrogateNet,
    /// Optional autoencoder whose encoder reduces the input first.
    pub autoencoder: Option<Autoencoder>,
    /// Scaler applied to the (reduced) input before the surrogate.
    pub scaler: Option<FeatureScaler>,
    /// Scaler whose inverse maps the surrogate's standardized outputs back
    /// to physical units.
    pub output_scaler: Option<FeatureScaler>,
}

impl ModelBundle {
    /// Save the bundle to a file (the `./saved_net.pt` of Listing 2).
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.to_json())
            .map_err(|e| RuntimeError::Inference(format!("saving bundle: {e}")))
    }

    /// Load a bundle from a file.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| RuntimeError::Inference(format!("loading bundle: {e}")))?;
        Self::from_json(&json)
    }

    /// Serialize to the checkpoint/share JSON format (paper §6.1).
    pub fn to_json(&self) -> String {
        let obj = serde_json::json!({
            "surrogate": self.surrogate,
            "autoencoder": self.autoencoder,
            "scaler": self.scaler,
            "output_scaler": self.output_scaler,
        });
        obj.to_string()
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        let v: serde_json::Value = serde_json::from_str(s)
            .map_err(|e| RuntimeError::Inference(format!("bad JSON: {e}")))?;
        let surrogate: SurrogateNet = serde_json::from_value(v["surrogate"].clone())
            .map_err(|e| RuntimeError::Inference(format!("bad surrogate: {e}")))?;
        let autoencoder: Option<Autoencoder> = serde_json::from_value(v["autoencoder"].clone())
            .map_err(|e| RuntimeError::Inference(format!("bad autoencoder: {e}")))?;
        let scaler: Option<FeatureScaler> = serde_json::from_value(v["scaler"].clone())
            .map_err(|e| RuntimeError::Inference(format!("bad scaler: {e}")))?;
        let output_scaler: Option<FeatureScaler> =
            serde_json::from_value(v["output_scaler"].clone())
                .map_err(|e| RuntimeError::Inference(format!("bad output scaler: {e}")))?;
        Ok(ModelBundle {
            surrogate,
            autoencoder,
            scaler,
            output_scaler,
        })
    }
}

/// Cumulative online-time breakdown (paper §7.3: fetch / encode / load /
/// infer shares).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineTimers {
    /// Time fetching input tensors from the store.
    pub fetch: Duration,
    /// Time running the encoder (feature reduction).
    pub encode: Duration,
    /// Time loading/deserializing models into the registry.
    pub model_load: Duration,
    /// Time running the surrogate and storing its output.
    pub infer: Duration,
}

impl OnlineTimers {
    /// Percentage breakdown `[fetch, encode, load, infer]`.
    pub fn percentages(&self) -> [f64; 4] {
        let total = (self.fetch + self.encode + self.model_load + self.infer).as_secs_f64();
        if total == 0.0 {
            return [0.0; 4];
        }
        [
            100.0 * self.fetch.as_secs_f64() / total,
            100.0 * self.encode.as_secs_f64() / total,
            100.0 * self.model_load.as_secs_f64() / total,
            100.0 * self.infer.as_secs_f64() / total,
        ]
    }
}

type ValidatorFn = dyn Fn(&[f64], &[f64]) -> bool + Send + Sync;
type FallbackFn = dyn Fn(&[f64]) -> Vec<f64> + Send + Sync;

/// Server-side restart-on-quality-miss (paper §7.1/§8).
///
/// A guard pairs a cheap validator with an optional fallback — the
/// original code region. After every surrogate inference for a guarded
/// model the orchestrator calls `validator(raw_input, output)`; on
/// rejection it answers with `fallback(raw_input)` (counted in
/// [`ServingStats::quality_fallbacks`]) or, when no fallback is
/// registered, fails the request with [`RuntimeError::QualityRejected`].
#[derive(Clone)]
pub struct QualityGuard {
    validator: Arc<ValidatorFn>,
    fallback: Option<Arc<FallbackFn>>,
}

impl QualityGuard {
    /// Guard with a validator only: rejected outputs fail the request
    /// with [`RuntimeError::QualityRejected`].
    pub fn new(validator: impl Fn(&[f64], &[f64]) -> bool + Send + Sync + 'static) -> Self {
        QualityGuard {
            validator: Arc::new(validator),
            fallback: None,
        }
    }

    /// Attach the original region as the fallback: rejected outputs are
    /// answered by re-running it on the raw input.
    pub fn with_fallback(
        mut self,
        fallback: impl Fn(&[f64]) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        self.fallback = Some(Arc::new(fallback));
        self
    }
}

impl std::fmt::Debug for QualityGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QualityGuard")
            .field("has_fallback", &self.fallback.is_some())
            .finish()
    }
}

/// A registry entry: the serialized-shareable bundle, the (closure-
/// carrying, deliberately non-serializable) quality guard, and — when the
/// orchestrator opted in via `serve_f32(true)` and the surrogate family
/// supports it — the `f32` kernels quantized from the bundle at
/// registration. The f32 net is a derived artifact: it is rebuilt on every
/// (re-)registration and never serialized.
pub(crate) struct RegisteredModel {
    /// The served bundle, behind an `Arc` so replacing a registry entry
    /// (guard swap, online hot-swap) is a pointer exchange rather than a
    /// deep copy of the network weights.
    pub(crate) bundle: Arc<ModelBundle>,
    pub(crate) guard: Option<QualityGuard>,
    f32_net: Option<MlpF32>,
    /// Served version under this name, monotonically increasing: 1 at
    /// first registration, +1 per re-registration and per accepted online
    /// hot-swap. A rollback reinstalls the previous entry with its
    /// original (lower) version, so the `hpcnet_model_version` gauge
    /// observably drops.
    pub(crate) version: u64,
}

impl RegisteredModel {
    pub(crate) fn new(
        bundle: Arc<ModelBundle>,
        guard: Option<QualityGuard>,
        serve_f32: bool,
        version: u64,
    ) -> Self {
        let f32_net = if serve_f32 {
            bundle.surrogate.to_f32()
        } else {
            None
        };
        RegisteredModel {
            bundle,
            guard,
            f32_net,
            version,
        }
    }
}

pub(crate) enum Request {
    RunModel {
        model: String,
        in_key: TensorKey,
        out_key: TensorKey,
        deadline: Option<Instant>,
        enqueued: Instant,
        /// Upstream trace context (DESIGN.md §16): when present, the
        /// server-side request span joins the caller's trace instead of
        /// rooting a fresh one.
        trace: Option<TraceContext>,
        reply: Sender<Result<()>>,
    },
    RunBatch {
        model: String,
        pairs: Vec<(TensorKey, TensorKey)>,
        deadline: Option<Instant>,
        enqueued: Instant,
        trace: Option<TraceContext>,
        reply: Sender<Vec<Result<()>>>,
    },
    /// Shutdown sentinel: each worker consumes exactly one and exits after
    /// finishing the round it was coalescing.
    Drain,
}

pub(crate) type ServerRequest = Request;

/// Most requests a worker folds into one coalescing round. Bounds both the
/// latency of the first drained request and peak batch memory.
const MAX_COALESCE: usize = 512;

/// Default bound on the admission queue (requests, not pairs).
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

pub(crate) type Registry = Arc<RwLock<HashMap<String, Arc<RegisteredModel>>>>;

/// Admission-control state shared between the orchestrator and every
/// client it hands out: the drain flag, the queue bound (for error
/// reporting), the default deadline, and the metrics sink that records
/// client-side overload rejections.
pub(crate) struct ServingShared {
    pub(crate) shutting_down: AtomicBool,
    pub(crate) queue_depth: usize,
    pub(crate) default_deadline: Option<Duration>,
    pub(crate) metrics: Arc<ServingMetrics>,
}

/// State shared between the orchestrator handle, its workers, and the
/// background retrainer thread.
#[derive(Clone)]
pub(crate) struct ServerCtx {
    pub(crate) store: TensorStore,
    pub(crate) registry: Registry,
    pub(crate) timers: Arc<Mutex<OnlineTimers>>,
    pub(crate) metrics: Arc<ServingMetrics>,
    pub(crate) serve_f32: bool,
    /// Online-retraining state ([`OrchestratorBuilder::online_retraining`]);
    /// `None` leaves the fallback path free of capture work.
    pub(crate) online: Option<Arc<OnlineState>>,
}

/// Configures and launches an [`Orchestrator`] (replaces the removed
/// `launch` / `launch_with_workers` constructors).
///
/// ```
/// use hpcnet_runtime::{Orchestrator, TensorStore};
/// use std::time::Duration;
///
/// let orc = Orchestrator::builder()
///     .store(TensorStore::new())
///     .workers(2)
///     .queue_depth(64)
///     .default_deadline(Duration::from_secs(5))
///     .build();
/// assert_eq!(orc.worker_count(), 2);
/// assert_eq!(orc.queue_depth(), 64);
/// ```
#[derive(Debug)]
pub struct OrchestratorBuilder {
    store: TensorStore,
    workers: Option<usize>,
    queue_depth: usize,
    default_deadline: Option<Duration>,
    telemetry: bool,
    serve_f32: bool,
    slow_request_threshold: Option<Duration>,
    trace_capacity: Option<usize>,
    online: Option<RetrainConfig>,
}

impl Default for OrchestratorBuilder {
    fn default() -> Self {
        OrchestratorBuilder {
            store: TensorStore::new(),
            workers: None,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            default_deadline: None,
            telemetry: true,
            serve_f32: false,
            slow_request_threshold: None,
            trace_capacity: None,
            online: None,
        }
    }
}

impl OrchestratorBuilder {
    /// Serve over an existing (possibly shared) store instead of a fresh
    /// one.
    pub fn store(mut self, store: TensorStore) -> Self {
        self.store = store;
        self
    }

    /// Worker-pool size. Defaults to one worker per available core,
    /// capped at 8. Clamped to at least 1.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Bound on the admission queue, in requests. A full queue rejects
    /// with [`RuntimeError::Overloaded`]. Clamped to at least 1; defaults
    /// to [`DEFAULT_QUEUE_DEPTH`].
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Deadline applied to every request that does not carry its own.
    /// Without one, requests wait indefinitely (the pre-redesign
    /// behavior).
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Enable or disable telemetry (default: enabled). A disabled
    /// orchestrator serves identically but records nothing: every
    /// instrument becomes a single-branch no-op, so the cost of the
    /// instrumentation itself can be measured without recompiling.
    /// Note [`Orchestrator::serving_stats`] is derived from the registry
    /// and therefore reads all-zero when telemetry is off.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Opt into reduced-precision serving (default: off). Every MLP
    /// bundle registered on this orchestrator is quantized to `f32`
    /// kernels at registration and batches run through them; CNN bundles
    /// keep serving in `f64` (the family has no f32 mirror yet). With a
    /// [`QualityGuard`] attached, any output the validator rejects is
    /// first recomputed through the `f64` surrogate for that request
    /// (counted in [`ServingStats::f32_fallbacks`]) before the usual
    /// fallback/reject semantics apply — see DESIGN.md §14.
    pub fn serve_f32(mut self, enabled: bool) -> Self {
        self.serve_f32 = enabled;
        self
    }

    /// Requests whose end-to-end (enqueue-to-answer) time reaches this
    /// threshold are always retained by the trace flight recorder *and*
    /// logged to the slow-request log, one structured JSON line per
    /// request with its full per-stage breakdown (DESIGN.md §16).
    /// Defaults to [`FlightRecorderConfig::default`]'s threshold.
    pub fn slow_request_threshold(mut self, threshold: Duration) -> Self {
        self.slow_request_threshold = Some(threshold);
        self
    }

    /// Bound on traces the flight recorder retains (oldest evicted
    /// beyond it). Clamped to at least 1; defaults to
    /// [`FlightRecorderConfig::default`]'s capacity.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity.max(1));
        self
    }

    /// Opt into online retraining from guard fallbacks (DESIGN.md §17,
    /// default: off). Every guard fallback then also captures its
    /// `(input, exact output)` pair into a bounded per-model replay
    /// buffer, and a background thread fine-tunes a clone of the served
    /// net once `config`'s triggers fire, hot-swapping validated
    /// improvements in atomically under a new version — with automatic
    /// rollback if the swapped candidate's guard-miss rate regresses
    /// over its probation window.
    pub fn online_retraining(mut self, config: RetrainConfig) -> Self {
        self.online = Some(config);
        self
    }

    /// Launch the worker pool and return the orchestrator handle.
    pub fn build(self) -> Orchestrator {
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        });
        let metrics_registry = if self.telemetry {
            hpcnet_telemetry::Registry::new()
        } else {
            hpcnet_telemetry::Registry::disabled()
        };
        let mut recorder_config = FlightRecorderConfig::default();
        if let Some(t) = self.slow_request_threshold {
            recorder_config.slow_threshold = t;
        }
        if let Some(c) = self.trace_capacity {
            recorder_config.capacity = c;
        }
        let metrics = Arc::new(ServingMetrics::new(
            Arc::new(metrics_registry),
            recorder_config,
        ));
        let online = self.online.map(|config| Arc::new(OnlineState::new(config)));
        let ctx = ServerCtx {
            store: self.store,
            registry: Arc::default(),
            timers: Arc::default(),
            metrics: metrics.clone(),
            serve_f32: self.serve_f32,
            online,
        };
        let shared = Arc::new(ServingShared {
            shutting_down: AtomicBool::new(false),
            queue_depth: self.queue_depth,
            default_deadline: self.default_deadline,
            metrics,
        });
        let (tx, rx) = bounded::<Request>(self.queue_depth);
        let handles = (0..workers)
            .map(|_| {
                let ctx = ctx.clone();
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(&ctx, &rx))
            })
            .collect();
        let retrainer = ctx.online.as_ref().map(|online| {
            let tick = online.config().tick;
            let (stop_tx, stop_rx) = bounded::<()>(1);
            let ctx = ctx.clone();
            let handle = std::thread::spawn(move || retrain::retrainer_loop(&ctx, &stop_rx, tick));
            (stop_tx, handle)
        });
        Orchestrator {
            ctx,
            shared,
            tx,
            rx,
            workers: handles,
            retrainer,
        }
    }
}

/// The inference server. Owns the model registry; executes `run_model` /
/// `run_model_batch` requests from clients on a pool of worker threads
/// (the process-local analog of the GPU-side RedisAI server). Built via
/// [`Orchestrator::builder`].
pub struct Orchestrator {
    ctx: ServerCtx,
    shared: Arc<ServingShared>,
    tx: Sender<Request>,
    /// Kept so drain can answer requests that raced past the admission
    /// flag (they are failed with `ShuttingDown`, never dropped).
    rx: Receiver<Request>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// The background retrainer thread and its stop channel, present
    /// when built with [`OrchestratorBuilder::online_retraining`].
    retrainer: Option<(Sender<()>, std::thread::JoinHandle<()>)>,
}

impl Orchestrator {
    /// Start configuring an orchestrator.
    pub fn builder() -> OrchestratorBuilder {
        OrchestratorBuilder::default()
    }

    /// The shared store.
    pub fn store(&self) -> &TensorStore {
        &self.ctx.store
    }

    /// Number of worker threads serving requests.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Admission-queue bound this orchestrator was built with.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth
    }

    /// Whether this orchestrator quantizes registered MLP bundles to
    /// `f32` kernels ([`OrchestratorBuilder::serve_f32`]).
    pub fn serves_f32(&self) -> bool {
        self.ctx.serve_f32
    }

    /// A client connected to this orchestrator (equivalent to
    /// [`Client::connect`]).
    pub fn client(&self) -> Client {
        Client::from_parts(self.ctx.store.clone(), self.tx.clone(), self.shared.clone())
    }

    /// Register a model bundle under a name (Listing 2's
    /// `set_model_from_file`). Load time is charged to the §7.3 breakdown.
    pub fn register_model(&self, name: &str, bundle: ModelBundle) {
        self.insert_model(name, bundle, None);
    }

    /// Register a model together with a server-side [`QualityGuard`]: the
    /// orchestrator validates every output of this model and performs the
    /// paper's restart-on-quality-miss itself.
    pub fn register_guarded_model(&self, name: &str, bundle: ModelBundle, guard: QualityGuard) {
        self.insert_model(name, bundle, Some(guard));
    }

    /// Attach (or replace) the quality guard of an already-registered
    /// model. Requests in flight finish on the entry they grabbed.
    pub fn set_quality_guard(&self, name: &str, guard: QualityGuard) -> Result<()> {
        let mut registry = self.ctx.registry.write();
        let Some(entry) = registry.get(name) else {
            return Err(RuntimeError::MissingModel(name.to_string()));
        };
        // Arc clone: the weights are shared with the outgoing entry, not
        // copied. The version is preserved: a guard swap serves the same
        // weights.
        let bundle = Arc::clone(&entry.bundle);
        let version = entry.version;
        registry.insert(
            name.to_string(),
            Arc::new(RegisteredModel::new(
                bundle,
                Some(guard),
                self.ctx.serve_f32,
                version,
            )),
        );
        Ok(())
    }

    fn insert_model(&self, name: &str, bundle: ModelBundle, guard: Option<QualityGuard>) {
        let t0 = Instant::now();
        let version = {
            let mut registry = self.ctx.registry.write();
            let version = registry.get(name).map_or(1, |e| e.version + 1);
            registry.insert(
                name.to_string(),
                Arc::new(RegisteredModel::new(
                    Arc::new(bundle),
                    guard,
                    self.ctx.serve_f32,
                    version,
                )),
            );
            version
        };
        self.ctx.metrics.set_model_version(name, version);
        // Replay samples and guard windows captured under the previous
        // bundle's scalers do not describe the new one.
        if let Some(online) = &self.ctx.online {
            online.reset_model(name);
        }
        self.ctx.timers.lock().model_load += t0.elapsed();
    }

    /// Register from the serialized JSON form, charging deserialization to
    /// the model-load timer (the file-load path of Listing 2).
    pub fn register_model_from_json(&self, name: &str, json: &str) -> Result<()> {
        let t0 = Instant::now();
        let bundle = ModelBundle::from_json(json)?;
        self.ctx.timers.lock().model_load += t0.elapsed();
        self.insert_model(name, bundle, None);
        Ok(())
    }

    /// Listing 2's `set_model_from_file`: load a saved bundle from disk
    /// and register it. Load time is charged to the §7.3 breakdown.
    pub fn set_model_from_file(&self, name: &str, path: &std::path::Path) -> Result<()> {
        let bundle = ModelBundle::load(path)?;
        self.insert_model(name, bundle, None);
        Ok(())
    }

    /// Is a model registered?
    pub fn has_model(&self, name: &str) -> bool {
        self.ctx.registry.read().contains_key(name)
    }

    /// Names of every registered model, sorted — the registry iteration a
    /// fronting server needs to describe itself (e.g. `STATS` replies).
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.ctx.registry.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Served version per registered model, read directly from the
    /// registry (monotonic per name: 1 at first registration, +1 per
    /// re-registration and per accepted online hot-swap; a rollback
    /// reinstalls the previous, lower version). Unlike the
    /// gauge-derived [`ServingStats::model_versions`], this reads
    /// correctly with telemetry disabled.
    pub fn model_versions(&self) -> HashMap<String, u64> {
        self.ctx
            .registry
            .read()
            .iter()
            .map(|(name, entry)| (name.clone(), entry.version))
            .collect()
    }

    /// Whether this orchestrator runs the online-retraining loop
    /// ([`OrchestratorBuilder::online_retraining`]).
    pub fn retrains_online(&self) -> bool {
        self.ctx.online.is_some()
    }

    /// Run one retrainer pass synchronously on the calling thread, as the
    /// background thread would on its next tick. Useful for tests and
    /// controlled rollouts that want a deterministic trigger point; a
    /// no-op unless built with [`OrchestratorBuilder::online_retraining`].
    pub fn retrain_now(&self) {
        retrain::retrain_pass(&self.ctx);
    }

    /// Replay samples currently buffered for `model` (0 when online
    /// retraining is off or the model has no captures).
    pub fn replay_buffered(&self, model: &str) -> usize {
        self.ctx
            .online
            .as_ref()
            .map_or(0, |online| online.buffered(model))
    }

    /// A shareable handle to this orchestrator's telemetry registry, so a
    /// fronting subsystem (the `hpcnet-net` TCP server) can record its
    /// connection gauges and per-op latency histograms into the same
    /// exposition the serving metrics live in.
    pub fn telemetry_registry(&self) -> Arc<hpcnet_telemetry::Registry> {
        self.ctx.metrics.registry_arc()
    }

    /// Snapshot of the cumulative online-time breakdown.
    pub fn online_timers(&self) -> OnlineTimers {
        *self.ctx.timers.lock()
    }

    /// Snapshot of the cumulative serving statistics (request counts per
    /// model, batch-size histogram, throughput, admission/deadline/quality
    /// counters) — a view derived from the telemetry registry.
    pub fn serving_stats(&self) -> ServingStats {
        self.ctx.metrics.stats()
    }

    /// Prometheus text exposition of this orchestrator's telemetry:
    /// request/error/batch counters, queue-wait and per-stage latency
    /// histograms per model, and the quality-guard counters. Serve this
    /// from a `/metrics` endpoint or dump it at shutdown.
    pub fn metrics_text(&self) -> String {
        self.ctx.metrics.registry().prometheus_text()
    }

    /// Structured point-in-time snapshot of this orchestrator's telemetry,
    /// including retained anomaly events (overload rejections, deadline
    /// expiries, quality misses). Serializable via
    /// [`RegistrySnapshot::to_json`].
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.ctx.metrics.registry().snapshot()
    }

    /// Recent request traces retained by the flight recorder, oldest
    /// first (DESIGN.md §16): every error / deadline-exceeded /
    /// guard-fallback / slow request plus a one-in-N sample of the rest.
    /// Empty when telemetry is disabled.
    pub fn trace_dump(&self) -> Vec<Trace> {
        self.ctx.metrics.recorder().snapshot()
    }

    /// Retained slow-request log lines, oldest first: one structured
    /// JSON object per request that ran past
    /// [`OrchestratorBuilder::slow_request_threshold`], with its full
    /// per-stage timing breakdown. The same lines go to stderr as they
    /// are recorded.
    pub fn slow_log(&self) -> Vec<String> {
        self.ctx.metrics.slow_log()
    }

    /// The slow-request threshold in force (shared by the flight
    /// recorder's slow-retention rule and the slow-request log).
    pub fn slow_request_threshold(&self) -> Duration {
        self.ctx.metrics.recorder().slow_threshold()
    }

    /// Graceful shutdown: stop admitting, let the workers finish every
    /// already-queued request, join them, and answer any request that
    /// raced past the admission flag with
    /// [`RuntimeError::ShuttingDown`]. Returns the final statistics.
    /// `Drop` performs the same drain.
    pub fn shutdown(mut self) -> ServingStats {
        self.drain_and_join();
        self.ctx.metrics.stats()
    }

    fn drain_and_join(&mut self) {
        // Stop the retrainer first so no swap lands while workers drain.
        if let Some((stop, handle)) = self.retrainer.take() {
            let _ = stop.send(());
            drop(stop);
            let _ = handle.join();
        }
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // One sentinel per worker, queued BEHIND all admitted requests
        // (the channel is FIFO), so in-flight work completes first.
        for _ in &self.workers {
            let _ = self.tx.send(Request::Drain);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Requests that slipped in after the flag but behind the
        // sentinels are answered, never dropped.
        while let Ok(req) = self.rx.try_recv() {
            match req {
                Request::RunModel { reply, .. } => {
                    let _ = reply.send(Err(RuntimeError::ShuttingDown));
                }
                Request::RunBatch { pairs, reply, .. } => {
                    let _ = reply.send(vec![Err(RuntimeError::ShuttingDown); pairs.len()]);
                }
                Request::Drain => {}
            }
        }
    }
}

impl Drop for Orchestrator {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

/// How a coalesced request answers its client.
enum Reply {
    Single(Sender<Result<()>>),
    Batch(Sender<Vec<Result<()>>>),
}

/// One client request drained from the channel, with per-pair result slots.
struct PendingRequest {
    model: String,
    pairs: Vec<(TensorKey, TensorKey)>,
    results: Vec<Option<Result<()>>>,
    deadline: Option<Instant>,
    enqueued: Instant,
    trace: Option<TraceContext>,
    /// Pairs of this request the quality guard answered via its fallback
    /// (or rejected) — drives the trace's `guard_fallback` retention tag.
    guard_fallbacks: u64,
    reply: Reply,
}

impl PendingRequest {
    /// `None` for `Drain`, which carries no reply channel — the worker
    /// loop consumes it as its exit signal before building pendings.
    fn from_request(req: Request) -> Option<Self> {
        match req {
            Request::RunModel {
                model,
                in_key,
                out_key,
                deadline,
                enqueued,
                trace,
                reply,
            } => Some(PendingRequest {
                model,
                pairs: vec![(in_key, out_key)],
                results: vec![None],
                deadline,
                enqueued,
                trace,
                guard_fallbacks: 0,
                reply: Reply::Single(reply),
            }),
            Request::RunBatch {
                model,
                pairs,
                deadline,
                enqueued,
                trace,
                reply,
            } => {
                let n = pairs.len();
                Some(PendingRequest {
                    model,
                    pairs,
                    results: vec![None; n],
                    deadline,
                    enqueued,
                    trace,
                    guard_fallbacks: 0,
                    reply: Reply::Batch(reply),
                })
            }
            Request::Drain => None,
        }
    }

    /// Fill every unanswered slot with `err`; returns how many were
    /// filled.
    fn fail_pending(&mut self, err: &RuntimeError) -> u64 {
        let mut filled = 0;
        for r in self.results.iter_mut() {
            if r.is_none() {
                *r = Some(Err(err.clone()));
                filled += 1;
            }
        }
        filled
    }

    fn deliver(self) {
        let fill = |r: Option<Result<()>>| {
            r.unwrap_or_else(|| Err(RuntimeError::Inference("request dropped".into())))
        };
        match self.reply {
            Reply::Single(tx) => {
                let r = self.results.into_iter().next().map(fill).unwrap_or(Ok(()));
                let _ = tx.send(r);
            }
            Reply::Batch(tx) => {
                let _ = tx.send(self.results.into_iter().map(fill).collect());
            }
        }
    }
}

/// One `(in_key, out_key)` pair flowing through a batched execution.
struct Unit {
    in_key: String,
    out_key: String,
    result: Option<Result<()>>,
    /// Did the quality guard answer this pair via its fallback (or
    /// reject it)? Propagated back to the owning request's trace.
    used_fallback: bool,
}

impl Unit {
    fn new(in_key: &str, out_key: &str) -> Self {
        Unit {
            in_key: in_key.to_string(),
            out_key: out_key.to_string(),
            result: None,
            used_fallback: false,
        }
    }

    fn pending(&self) -> bool {
        self.result.is_none()
    }

    fn take_result(self) -> Result<()> {
        self.result
            .unwrap_or_else(|| Err(RuntimeError::Inference("request not executed".into())))
    }
}

/// Worker body: block for one request, drain the backlog, expire overdue
/// requests, execute the rest grouped by model, answer every client,
/// repeat.
fn worker_loop(ctx: &ServerCtx, rx: &Receiver<Request>) {
    loop {
        let first = match rx.recv() {
            Ok(Request::Drain) | Err(_) => return,
            Ok(req) => req,
        };
        let Some(first) = PendingRequest::from_request(first) else {
            continue;
        };
        let mut pending = vec![first];
        let mut queued = pending[0].pairs.len();
        let mut stop = false;
        while queued < MAX_COALESCE {
            match rx.try_recv() {
                Ok(Request::Drain) => {
                    stop = true;
                    break;
                }
                Ok(req) => {
                    if let Some(p) = PendingRequest::from_request(req) {
                        queued += p.pairs.len();
                        pending.push(p);
                    }
                }
                Err(_) => break,
            }
        }
        let picked_up = Instant::now();
        for p in &pending {
            ctx.metrics
                .record_queue_wait(&p.model, picked_up.saturating_duration_since(p.enqueued));
        }
        // Panic backstop: the per-closure containment in `deliver_output`
        // and `infer_and_scatter` already converts panicking guard/model
        // closures into per-unit errors, but if anything else in the round
        // panics, answer every still-pending request with a typed error
        // instead of unwinding the worker — a dead worker strands its
        // share of the queue and every future request routed to it.
        let round = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            expire_overdue(ctx, &mut pending);
            process_round(ctx, &mut pending)
        }));
        let reports = match round {
            Ok(reports) => reports,
            Err(payload) => {
                let err = RuntimeError::Inference(format!(
                    "serving worker panicked mid-round: {}",
                    panic_message(&payload)
                ));
                for p in pending.iter_mut() {
                    let failed = p.fail_pending(&err);
                    if failed > 0 {
                        ctx.metrics.record_request_errors(&p.model, failed);
                    }
                }
                HashMap::new()
            }
        };
        if ctx.metrics.recorder().is_enabled() {
            for p in &pending {
                record_request_trace(ctx, p, reports.get(&p.model), picked_up);
            }
        }
        for p in pending {
            p.deliver();
        }
        if stop {
            return;
        }
    }
}

/// Render a caught panic payload for inclusion in a typed error.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The `service` tag every orchestrator-recorded span carries.
pub(crate) const TRACE_SERVICE: &str = "orchestrator";

/// Assemble and record one completed request's span tree (DESIGN.md
/// §16): a `request` root (child of the propagated upstream span when
/// the client sent a [`TraceContext`]), a measured `queue_wait` child,
/// and one child per executed stage. Stage durations come from the
/// request's coalesced group and therefore cover the whole batch — each
/// stage span is annotated with `coalesced` so readers can tell.
fn record_request_trace(
    ctx: &ServerCtx,
    p: &PendingRequest,
    report: Option<&GroupReport>,
    picked_up: Instant,
) {
    let total = p.enqueued.elapsed();
    let start_unix = trace::unix_nanos_now().saturating_sub(total.as_nanos() as u64);
    let queue_wait = picked_up.saturating_duration_since(p.enqueued);
    let first_err = p
        .results
        .iter()
        .flatten()
        .filter_map(|r| r.as_ref().err())
        .next();
    // Fully-expired requests never joined a group; their model's report
    // (from other requests in the round) does not describe their work.
    let all_expired = !p.results.is_empty()
        && p.results
            .iter()
            .all(|r| matches!(r, Some(Err(RuntimeError::DeadlineExceeded))));
    let report = if all_expired { None } else { report };

    let trace_id = p
        .trace
        .map_or_else(|| TraceId(trace::next_id()), |c| c.trace_id);
    let mut t = Trace::new(trace_id);
    let mut root = SpanRecord::new(stage_names::REQUEST, TRACE_SERVICE, start_unix, total)
        .annotate("model", &p.model)
        .annotate("pairs", p.pairs.len());
    if let Some(parent) = p.trace.and_then(|c| c.parent_span) {
        root = root.with_parent(parent);
    }
    if let Some(rep) = report {
        root = root.annotate("coalesced", rep.coalesced);
    }
    if let Some(e) = first_err {
        root = root.with_error(e);
    }
    let root_id = root.span_id;
    t.push(root);
    t.push(
        SpanRecord::new(
            stage_names::QUEUE_WAIT,
            TRACE_SERVICE,
            start_unix,
            queue_wait,
        )
        .with_parent(root_id),
    );
    if let Some(rep) = report {
        let mut cursor = start_unix.saturating_add(queue_wait.as_nanos() as u64);
        for (name, duration, optional) in stage_spans(&rep.times) {
            if optional && duration.is_zero() {
                continue;
            }
            t.push(
                SpanRecord::new(name, TRACE_SERVICE, cursor, duration)
                    .with_parent(root_id)
                    .annotate("coalesced", rep.coalesced),
            );
            cursor = cursor.saturating_add(duration.as_nanos() as u64);
        }
    }
    if matches!(first_err, Some(RuntimeError::DeadlineExceeded)) {
        t.tag(tags::DEADLINE);
    }
    if p.guard_fallbacks > 0 {
        t.tag(tags::FALLBACK);
    }
    if total >= ctx.metrics.recorder().slow_threshold() {
        ctx.metrics
            .record_slow_request(slow_request_line(ctx, &t, p, total, queue_wait, report));
    }
    ctx.metrics.record_trace(t);
}

/// The stage children of a request span, in serving order:
/// `(name, duration, only_emit_when_nonzero)`. `fetch`/`encode`/`infer`
/// always appear; the conditional stages only when they did work.
fn stage_spans(times: &StageTimes) -> [(&'static str, Duration, bool); 6] {
    let infer_f64 = times
        .infer
        .saturating_sub(times.infer_f32 + times.guard + times.fallback);
    [
        (stage_names::FETCH, times.fetch, false),
        (stage_names::ENCODE, times.encode, false),
        (stage_names::INFER, infer_f64, false),
        (stage_names::INFER_F32, times.infer_f32, true),
        (stage_names::GUARD, times.guard, true),
        (stage_names::FALLBACK, times.fallback, true),
    ]
}

/// One structured slow-request log line: everything an operator needs to
/// see where the time went without pulling the full trace dump.
fn slow_request_line(
    ctx: &ServerCtx,
    t: &Trace,
    p: &PendingRequest,
    total: Duration,
    queue_wait: Duration,
    report: Option<&GroupReport>,
) -> String {
    let mut stages = serde_json::Map::new();
    let micros = |d: Duration| serde_json::Value::from(d.as_micros() as u64);
    stages.insert(stage_names::QUEUE_WAIT.to_string(), micros(queue_wait));
    if let Some(rep) = report {
        for (name, duration, optional) in stage_spans(&rep.times) {
            if optional && duration.is_zero() {
                continue;
            }
            stages.insert(name.to_string(), micros(duration));
        }
    }
    let first_err = p
        .results
        .iter()
        .flatten()
        .filter_map(|r| r.as_ref().err())
        .next();
    serde_json::json!({
        "slow_request": {
            "trace_id": t.trace_id.to_string(),
            "model": p.model,
            "pairs": p.pairs.len(),
            "coalesced": report.map(|r| r.coalesced),
            "total_micros": total.as_micros() as u64,
            "threshold_micros": ctx.metrics.recorder().slow_threshold().as_micros() as u64,
            "stages_micros": stages,
            "tags": t.tags,
            "error": first_err.map(|e| e.to_string()),
        }
    })
    .to_string()
}

/// Deadline enforcement at execution time (the enqueue-side check lives
/// in the client): requests whose deadline has already passed are failed
/// with `DeadlineExceeded` before any work is spent on them.
fn expire_overdue(ctx: &ServerCtx, pending: &mut [PendingRequest]) {
    let now = Instant::now();
    for p in pending.iter_mut() {
        if p.deadline.is_some_and(|d| d <= now) {
            let expired = p.fail_pending(&RuntimeError::DeadlineExceeded);
            if expired > 0 {
                let in_key = p.pairs.first().map(|(i, _)| i.as_str()).unwrap_or("");
                ctx.metrics
                    .record_deadline_expired(&p.model, expired, in_key);
            }
        }
    }
}

/// What one executed model group looked like, kept so every traced
/// request in the round can attribute the group's stage timings (with a
/// `coalesced` annotation, since the timings cover the whole batch).
struct GroupReport {
    times: StageTimes,
    coalesced: usize,
}

/// Group the drained requests' unanswered pairs by model name (preserving
/// arrival order within each group) and execute one batched pass per
/// group. Returns one [`GroupReport`] per executed model for the round's
/// trace assembly.
fn process_round(ctx: &ServerCtx, pending: &mut [PendingRequest]) -> HashMap<String, GroupReport> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
    for (pi, p) in pending.iter().enumerate() {
        for qi in 0..p.pairs.len() {
            if p.results[qi].is_some() {
                continue; // already answered (e.g. expired)
            }
            let slots = groups.entry(p.model.clone()).or_insert_with(|| {
                order.push(p.model.clone());
                Vec::new()
            });
            slots.push((pi, qi));
        }
    }
    let mut reports = HashMap::new();
    for model in order {
        let Some(slots) = groups.remove(&model) else {
            continue;
        };
        let mut units: Vec<Unit> = slots
            .iter()
            .map(|&(pi, qi)| {
                let (in_key, out_key) = &pending[pi].pairs[qi];
                Unit::new(in_key.as_str(), out_key.as_str())
            })
            .collect();
        let times = execute_group(ctx, &model, &mut units);
        let coalesced = units.len();
        for ((pi, qi), unit) in slots.into_iter().zip(units) {
            if unit.used_fallback {
                pending[pi].guard_fallbacks += 1;
            }
            pending[pi].results[qi] = Some(unit.take_result());
        }
        reports.insert(model, GroupReport { times, coalesced });
    }
    reports
}

/// Quality-guard outcome tallies for one executed group, plus the wall
/// time spent inside the validator and the fallback region (attributed to
/// their own telemetry stages, carved out of the infer wall time).
#[derive(Default)]
struct QualityCounts {
    hits: u64,
    fallbacks: u64,
    rejected: u64,
    guard_time: Duration,
    fallback_time: Duration,
    /// Requests whose stored answer came from the `f32` kernel path.
    f32_served: u64,
    /// Guarded `f32` outputs the validator rejected and the `f64`
    /// surrogate recomputed (precision demotion).
    f32_fallbacks: u64,
    /// Wall time spent inside `f32` batched forwards (including the
    /// f64↔f32 row conversions), attributed to the `infer_f32` stage.
    f32_time: Duration,
}

/// Execute all `units` against one model as a batched pass: fetch every
/// input, encode as a batch, one `predict_batch`, scatter the output rows
/// (through the quality guard when one is registered). Errors are
/// attributed per unit; every unit leaves with `Some` result. Returns
/// the group's stage-timing split for trace assembly.
fn execute_group(ctx: &ServerCtx, model: &str, units: &mut [Unit]) -> StageTimes {
    let t_group = Instant::now();

    let t0 = Instant::now();
    let mut inputs: Vec<Option<TensorValue>> = units
        .iter_mut()
        .map(|u| match ctx.store.get(&u.in_key) {
            Ok(v) => Some(v),
            Err(e) => {
                u.result = Some(Err(e));
                None
            }
        })
        .collect();
    let fetch = t0.elapsed();

    // Clone the entry Arc out of the registry: the read lock is NOT held
    // across encode/inference, so registrations never wait on a long batch
    // and a re-registration mid-batch can't change results mid-row.
    let entry: Option<Arc<RegisteredModel>> = ctx.registry.read().get(model).cloned();
    let Some(entry) = entry else {
        for u in units.iter_mut() {
            if u.pending() {
                u.result = Some(Err(RuntimeError::MissingModel(model.to_string())));
            }
        }
        let times = StageTimes {
            fetch,
            encode: Duration::ZERO,
            infer: Duration::ZERO,
            infer_f32: Duration::ZERO,
            guard: Duration::ZERO,
            fallback: Duration::ZERO,
            busy: t_group.elapsed(),
        };
        finish_group(ctx, model, units, &times, QualityCounts::default());
        return times;
    };

    // Guarded models keep a dense copy of every raw input: the validator
    // judges (input, output) pairs and the fallback re-runs the original
    // region on the raw input.
    let raws: Option<Vec<Option<Vec<f64>>>> = entry.guard.as_ref().map(|_| {
        inputs
            .iter()
            .map(|inp| {
                inp.as_ref().map(|v| match v {
                    TensorValue::Dense(d) => d.clone(),
                    TensorValue::Sparse(s) => s.to_dense_vector(),
                })
            })
            .collect()
    });

    let t1 = Instant::now();
    let mut features: Vec<Option<Vec<f64>>> = (0..units.len()).map(|_| None).collect();
    encode_features(&entry.bundle, units, &mut inputs, &mut features);
    let encode = t1.elapsed();

    let t2 = Instant::now();
    let mut quality = QualityCounts::default();
    infer_and_scatter(
        ctx,
        &entry,
        model,
        units,
        &mut features,
        raws.as_deref(),
        &mut quality,
    );
    let infer = t2.elapsed();

    let (guard, fallback) = (quality.guard_time, quality.fallback_time);
    let times = StageTimes {
        fetch,
        encode,
        infer,
        infer_f32: quality.f32_time,
        guard,
        fallback,
        busy: t_group.elapsed(),
    };
    finish_group(ctx, model, units, &times, quality);
    times
}

fn finish_group(
    ctx: &ServerCtx,
    model: &str,
    units: &mut [Unit],
    times: &StageTimes,
    quality: QualityCounts,
) {
    for u in units.iter_mut() {
        if u.pending() {
            u.result = Some(Err(RuntimeError::Inference("request not executed".into())));
        }
    }
    {
        // The §7.3 breakdown keeps its historical attribution: guard and
        // fallback time stays inside `infer`. The telemetry registry
        // splits them into their own stages.
        let mut t = ctx.timers.lock();
        t.fetch += times.fetch;
        t.encode += times.encode;
        t.infer += times.infer;
    }
    let errors = units
        .iter()
        .filter(|u| matches!(u.result, Some(Err(_))))
        .count();
    ctx.metrics.record_group(model, units.len(), errors, times);
    if quality.hits + quality.fallbacks + quality.rejected > 0 {
        ctx.metrics
            .record_quality(quality.hits, quality.fallbacks, quality.rejected);
        // Guard verdicts drive the retraining baseline window and, for a
        // model on probation, its keep-or-rollback verdict.
        retrain::observe_guard(
            ctx,
            model,
            quality.hits,
            quality.fallbacks + quality.rejected,
        );
    }
    if quality.f32_served + quality.f32_fallbacks > 0 {
        ctx.metrics
            .record_f32(quality.f32_served, quality.f32_fallbacks);
    }
}

/// Feature reduction for a group (paper §4.2's online API): without an
/// autoencoder inputs pass through (sparse rows densify to the model's
/// input width); with one, dense and sparse inputs are batched separately
/// through the encoder — the sparse path never densifies the raw input.
fn encode_features(
    bundle: &ModelBundle,
    units: &mut [Unit],
    inputs: &mut [Option<TensorValue>],
    features: &mut [Option<Vec<f64>>],
) {
    match &bundle.autoencoder {
        None => {
            for (i, inp) in inputs.iter_mut().enumerate() {
                if let Some(v) = inp.take() {
                    features[i] = Some(match v {
                        TensorValue::Dense(d) => d,
                        TensorValue::Sparse(s) => s.to_dense_vector(),
                    });
                }
            }
        }
        Some(ae) => {
            let mut dense: Vec<(usize, Vec<f64>)> = Vec::new();
            let mut sparse: Vec<(usize, Csr)> = Vec::new();
            for (i, inp) in inputs.iter_mut().enumerate() {
                match inp.take() {
                    Some(TensorValue::Dense(d)) => dense.push((i, d)),
                    Some(TensorValue::Sparse(s)) => sparse.push((i, s)),
                    None => {}
                }
            }
            encode_dense_group(ae, units, features, dense);
            encode_sparse_group(ae, units, features, sparse);
        }
    }
}

fn encode_dense_group(
    ae: &Autoencoder,
    units: &mut [Unit],
    features: &mut [Option<Vec<f64>>],
    group: Vec<(usize, Vec<f64>)>,
) {
    if group.is_empty() {
        return;
    }
    if group.len() > 1 && group.iter().all(|(_, v)| v.len() == ae.input_dim()) {
        let mut data = Vec::with_capacity(group.len() * ae.input_dim());
        for (_, v) in &group {
            data.extend_from_slice(v);
        }
        if let Ok(x) = Matrix::from_vec(group.len(), ae.input_dim(), data) {
            if let Ok(encoded) = ae.encode_batch(&x) {
                for (r, (i, _)) in group.iter().enumerate() {
                    features[*i] = Some(encoded.row(r).to_vec());
                }
                return;
            }
        }
    }
    // Single sample, ragged widths, or a failed batch: encode one by one
    // so errors attach to the right request.
    for (i, v) in group {
        match ae.encode(&v) {
            Ok(f) => features[i] = Some(f),
            Err(e) => units[i].result = Some(Err(e.into())),
        }
    }
}

fn encode_sparse_group(
    ae: &Autoencoder,
    units: &mut [Unit],
    features: &mut [Option<Vec<f64>>],
    group: Vec<(usize, Csr)>,
) {
    if group.is_empty() {
        return;
    }
    let stackable = group.len() > 1
        && group
            .iter()
            .all(|(_, s)| s.nrows() == 1 && s.ncols() == ae.input_dim());
    if stackable {
        if let Some(x) = vstack_single_rows(&group) {
            if let Ok(encoded) = ae.encode_sparse(&x) {
                for (r, (i, _)) in group.iter().enumerate() {
                    features[*i] = Some(encoded.row(r).to_vec());
                }
                return;
            }
        }
    }
    for (i, s) in group {
        match ae.encode_sparse(&s) {
            Ok(m) => features[i] = Some(m.into_vec()),
            Err(e) => units[i].result = Some(Err(e.into())),
        }
    }
}

/// Stack single-row CSR matrices into one multi-row CSR without
/// densifying: per-row index/value runs concatenate unchanged, so row `r`
/// of the stack is exactly input `r`.
fn vstack_single_rows(group: &[(usize, Csr)]) -> Option<Csr> {
    let ncols = group.first()?.1.ncols();
    let nnz: usize = group.iter().map(|(_, s)| s.nnz()).sum();
    let mut indptr = Vec::with_capacity(group.len() + 1);
    indptr.push(0usize);
    let mut indices = Vec::with_capacity(nnz);
    let mut data = Vec::with_capacity(nnz);
    for (_, s) in group {
        indices.extend_from_slice(s.indices());
        data.extend_from_slice(s.values());
        indptr.push(indices.len());
    }
    Csr::from_raw(group.len(), ncols, indptr, indices, data).ok()
}

/// Inverse-scale one output row, pass it through the quality guard if one
/// is registered, store it, and mark the unit done. Both the batched and
/// the per-unit fallback inference paths converge here, so guard
/// semantics are identical regardless of how the row was produced.
///
/// `feature` is the scaled feature row `y` was computed from (absent
/// only when the row could not be reconstructed); `from_f32` marks that
/// `y` came from the `f32` kernel path. A guard rejection of an `f32`
/// output first *demotes* the request — recomputes the answer through
/// the `f64` surrogate on that feature and re-validates — before the
/// fallback/reject semantics apply (DESIGN.md §14). The recompute is
/// charged to plain infer time, not to the guard or fallback stages,
/// because it is inference work. Under online retraining, a fallback
/// answer is also captured with its feature row as a replay sample.
#[allow(clippy::too_many_arguments)]
fn deliver_output(
    ctx: &ServerCtx,
    entry: &RegisteredModel,
    model: &str,
    raws: Option<&[Option<Vec<f64>>]>,
    quality: &mut QualityCounts,
    unit: &mut Unit,
    index: usize,
    mut y: Vec<f64>,
    feature: Option<&[f64]>,
    from_f32: bool,
) {
    let mut from_f32 = from_f32 && feature.is_some();
    if let Some(os) = &entry.bundle.output_scaler {
        os.inverse_transform_vec(&mut y);
    }
    if let Some(guard) = &entry.guard {
        let raw: &[f64] = raws
            .and_then(|r| r.get(index))
            .and_then(|o| o.as_deref())
            .unwrap_or(&[]);
        let t_guard = Instant::now();
        // User-supplied closure: contain a panic to this unit so the rest
        // of the batch (and the worker thread) keeps serving.
        let verdict =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (guard.validator)(raw, &y)));
        quality.guard_time += t_guard.elapsed();
        let mut accepted = match verdict {
            Ok(a) => a,
            Err(payload) => {
                unit.result = Some(Err(RuntimeError::Inference(format!(
                    "quality validator panicked for input `{}`: {}",
                    unit.in_key,
                    panic_message(&payload)
                ))));
                return;
            }
        };
        if !accepted && from_f32 {
            if let Some(feature) = feature {
                // Precision demotion: the quantized answer missed, so this
                // request re-runs on the f64 surrogate and is judged again.
                from_f32 = false;
                let rejected_y0 = y.first().copied().unwrap_or(f64::NAN);
                let recomputed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    entry.bundle.surrogate.predict(feature)
                }));
                let mut y64 = match recomputed {
                    Ok(Ok(out)) => out,
                    Ok(Err(e)) => {
                        unit.result = Some(Err(e.into()));
                        return;
                    }
                    Err(payload) => {
                        unit.result = Some(Err(RuntimeError::Inference(format!(
                            "model `{model}` panicked during f64 demotion for input `{}`: {}",
                            unit.in_key,
                            panic_message(&payload)
                        ))));
                        return;
                    }
                };
                if let Some(os) = &entry.bundle.output_scaler {
                    os.inverse_transform_vec(&mut y64);
                }
                y = y64;
                quality.f32_fallbacks += 1;
                ctx.metrics
                    .quality_event(EVENT_F32_DEMOTED, model, &unit.in_key, rejected_y0);
                let t_guard = Instant::now();
                let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    (guard.validator)(raw, &y)
                }));
                quality.guard_time += t_guard.elapsed();
                accepted = match verdict {
                    Ok(a) => a,
                    Err(payload) => {
                        unit.result = Some(Err(RuntimeError::Inference(format!(
                            "quality validator panicked for input `{}`: {}",
                            unit.in_key,
                            panic_message(&payload)
                        ))));
                        return;
                    }
                };
            }
        }
        if accepted {
            quality.hits += 1;
        } else if let Some(fallback) = &guard.fallback {
            let rejected_y0 = y.first().copied().unwrap_or(f64::NAN);
            let t_fb = Instant::now();
            // Same containment for the fallback region closure.
            let recomputed =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fallback(raw)));
            quality.fallback_time += t_fb.elapsed();
            match recomputed {
                Ok(out) => y = out,
                Err(payload) => {
                    unit.result = Some(Err(RuntimeError::Inference(format!(
                        "fallback region panicked for input `{}`: {}",
                        unit.in_key,
                        panic_message(&payload)
                    ))));
                    return;
                }
            }
            quality.fallbacks += 1;
            unit.used_fallback = true;
            ctx.metrics
                .quality_event(EVENT_QUALITY_FALLBACK, model, &unit.in_key, rejected_y0);
            // The exact region just produced a perfectly-labeled sample
            // from the surrogate's weakest input region: capture it for
            // the online fine-tuner (a no-op unless retraining is on).
            if let Some(f) = feature {
                retrain::capture(ctx, entry, model, f, &y);
            }
        } else {
            quality.rejected += 1;
            unit.used_fallback = true;
            let rejected_y0 = y.first().copied().unwrap_or(f64::NAN);
            ctx.metrics
                .quality_event(EVENT_QUALITY_REJECTED, model, &unit.in_key, rejected_y0);
            unit.result = Some(Err(RuntimeError::QualityRejected(format!(
                "validator rejected output for input `{}`",
                unit.in_key
            ))));
            return;
        }
    }
    if from_f32 {
        quality.f32_served += 1;
    }
    ctx.store.put_dense(&unit.out_key, y);
    unit.result = Some(Ok(()));
}

/// Scale features, run one batched forward per feature width (normally a
/// single batch), and deliver each output row through
/// [`deliver_output`]. Each step applies per row exactly as the
/// single-sample path does, so un-guarded outputs are bit-identical to
/// `predict`.
#[allow(clippy::too_many_arguments)]
fn infer_and_scatter(
    ctx: &ServerCtx,
    entry: &RegisteredModel,
    model: &str,
    units: &mut [Unit],
    features: &mut [Option<Vec<f64>>],
    raws: Option<&[Option<Vec<f64>>]>,
    quality: &mut QualityCounts,
) {
    let bundle = &entry.bundle;
    if let Some(scaler) = &bundle.scaler {
        for f in features.iter_mut().flatten() {
            scaler.transform_vec(f);
        }
    }
    let mut width_groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, f) in features.iter().enumerate() {
        if let (true, Some(f)) = (units[i].pending(), f) {
            match width_groups.iter_mut().find(|(w, _)| *w == f.len()) {
                Some((_, members)) => members.push(i),
                None => width_groups.push((f.len(), vec![i])),
            }
        }
    }
    for (width, members) in width_groups {
        // Opt-in reduced precision: quantized bundles serve the whole
        // width group through the f32 kernels. A failed f32 batch (ragged
        // width, model panic) falls through to the f64 path below so
        // errors attach with the established per-unit semantics.
        if let Some(q) = &entry.f32_net {
            let t_f32 = Instant::now();
            let mut data = Vec::with_capacity(members.len() * width);
            for &i in &members {
                if let Some(f) = &features[i] {
                    data.extend(f.iter().map(|&v| v as f32));
                }
            }
            let batched = MatrixF32::from_vec(members.len(), width, data)
                .map_err(RuntimeError::from)
                .and_then(|x| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.predict_batch(&x)))
                        .map_err(|payload| {
                            RuntimeError::Inference(format!(
                                "model `{model}` panicked during f32 batched inference: {}",
                                panic_message(&payload)
                            ))
                        })
                        .and_then(|r| r.map_err(RuntimeError::from))
                });
            quality.f32_time += t_f32.elapsed();
            if let Ok(out) = batched {
                for (r, &i) in members.iter().enumerate() {
                    let y: Vec<f64> = out.row(r).iter().map(|&v| f64::from(v)).collect();
                    let feature = features[i].as_deref();
                    deliver_output(
                        ctx,
                        entry,
                        model,
                        raws,
                        quality,
                        &mut units[i],
                        i,
                        y,
                        feature,
                        true,
                    );
                }
                continue;
            }
        }
        let mut data = Vec::with_capacity(members.len() * width);
        for &i in &members {
            if let Some(f) = &features[i] {
                data.extend_from_slice(f);
            }
        }
        let batched = Matrix::from_vec(members.len(), width, data)
            .map_err(RuntimeError::from)
            .and_then(|x| {
                // Contain model panics: a poisoned batch falls through to
                // the per-unit path below, which attributes the failure.
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    bundle.surrogate.predict_batch(&x)
                }))
                .map_err(|payload| {
                    RuntimeError::Inference(format!(
                        "model `{model}` panicked during batched inference: {}",
                        panic_message(&payload)
                    ))
                })
                .and_then(|r| r.map_err(RuntimeError::from))
            });
        match batched {
            Ok(out) => {
                for (r, &i) in members.iter().enumerate() {
                    let y = out.row(r).to_vec();
                    let feature = features[i].as_deref();
                    deliver_output(
                        ctx,
                        entry,
                        model,
                        raws,
                        quality,
                        &mut units[i],
                        i,
                        y,
                        feature,
                        false,
                    );
                }
            }
            Err(_) => {
                // The batch failed as a whole (e.g. width mismatch with the
                // model): fall back to per-unit predicts so the error lands
                // on the offending request(s).
                for &i in &members {
                    let Some(f) = features[i].as_ref() else {
                        continue;
                    };
                    let predicted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        bundle.surrogate.predict(f)
                    }));
                    match predicted {
                        Ok(Ok(y)) => deliver_output(
                            ctx,
                            entry,
                            model,
                            raws,
                            quality,
                            &mut units[i],
                            i,
                            y,
                            Some(f.as_slice()),
                            false,
                        ),
                        Ok(Err(e)) => {
                            units[i].result = Some(Err(e.into()));
                        }
                        Err(payload) => {
                            units[i].result = Some(Err(RuntimeError::Inference(format!(
                                "model `{model}` panicked for input `{}`: {}",
                                units[i].in_key,
                                panic_message(&payload)
                            ))));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_nn::{Mlp, Topology};
    use hpcnet_tensor::rng::seeded;

    fn tiny_bundle() -> ModelBundle {
        let mlp = Mlp::new(&Topology::mlp(vec![3, 4, 2]), &mut seeded(1, "srv")).unwrap();
        ModelBundle {
            surrogate: mlp.into(),
            autoencoder: None,
            scaler: None,
            output_scaler: None,
        }
    }

    #[test]
    fn run_model_produces_output_tensor() {
        let orc = Orchestrator::builder().build();
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        orc.client().run_model("m", "in", "out").unwrap();
        let out = orc.store().get_dense("out").unwrap();
        assert_eq!(out.len(), 2);
        let timers = orc.online_timers();
        assert!(timers.fetch + timers.infer > Duration::ZERO);
    }

    #[test]
    fn model_names_lists_sorted_registrations() {
        let orc = Orchestrator::builder().build();
        assert!(orc.model_names().is_empty());
        orc.register_model("zeta", tiny_bundle());
        orc.register_model("alpha", tiny_bundle());
        assert_eq!(orc.model_names(), vec!["alpha", "zeta"]);
        // The shared registry handle points at the same instruments.
        orc.telemetry_registry().counter("hpcnet_test_total").inc();
        assert!(orc.metrics_text().contains("hpcnet_test_total 1"));
    }

    #[test]
    fn missing_model_and_tensor_error() {
        let orc = Orchestrator::builder().build();
        let client = orc.client();
        assert!(matches!(
            client.run_model("ghost", "in", "out"),
            Err(RuntimeError::MissingTensor(_)) | Err(RuntimeError::MissingModel(_))
        ));
        orc.store().put_dense("in", vec![1.0, 2.0, 3.0]);
        assert_eq!(
            client.run_model("ghost", "in", "out"),
            Err(RuntimeError::MissingModel("ghost".into()))
        );
    }

    #[test]
    fn bundle_json_roundtrip_preserves_inference() {
        let bundle = tiny_bundle();
        let json = bundle.to_json();
        let orc = Orchestrator::builder().build();
        orc.register_model_from_json("m", &json).unwrap();
        orc.store().put_dense("in", vec![0.5, -0.5, 0.25]);
        orc.client().run_model("m", "in", "out").unwrap();
        let via_registry = orc.store().get_dense("out").unwrap();
        let direct = bundle.surrogate.predict(&[0.5, -0.5, 0.25]).unwrap();
        assert_eq!(via_registry, direct);
        assert!(orc.online_timers().model_load > Duration::ZERO);
    }

    #[test]
    fn sparse_input_with_autoencoder_never_densifies_width() {
        let mut rng = seeded(2, "srv-ae");
        let ae = Autoencoder::new(20, 4, &mut rng).unwrap();
        let mlp = Mlp::new(&Topology::mlp(vec![4, 6, 2]), &mut rng).unwrap();
        let bundle = ModelBundle {
            surrogate: mlp.into(),
            autoencoder: Some(ae),
            scaler: None,
            output_scaler: None,
        };
        let orc = Orchestrator::builder().build();
        orc.register_model("sparse-m", bundle);
        let mut coo = hpcnet_tensor::Coo::new(1, 20);
        coo.push(0, 3, 1.0);
        coo.push(0, 17, -2.0);
        orc.store().put_sparse("in", coo.to_csr());
        orc.client().run_model("sparse-m", "in", "out").unwrap();
        assert_eq!(orc.store().get_dense("out").unwrap().len(), 2);
    }

    #[test]
    fn bundle_file_roundtrip_and_set_model_from_file() {
        let bundle = tiny_bundle();
        let dir = std::env::temp_dir().join("hpcnet-test-bundle");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("saved_net.json");
        bundle.save(&path).unwrap();
        let orc = Orchestrator::builder().build();
        orc.set_model_from_file("m", &path).unwrap();
        assert!(orc.has_model("m"));
        orc.store().put_dense("in", vec![0.3, 0.2, 0.1]);
        orc.client().run_model("m", "in", "out").unwrap();
        assert_eq!(
            orc.store().get_dense("out").unwrap(),
            bundle.surrogate.predict(&[0.3, 0.2, 0.1]).unwrap()
        );
        assert!(ModelBundle::load(&dir.join("missing.json")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn percentages_sum_to_hundred_when_nonzero() {
        let orc = Orchestrator::builder().build();
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        let client = orc.client();
        for _ in 0..5 {
            client.run_model("m", "in", "out").unwrap();
        }
        let p = orc.online_timers().percentages();
        let sum: f64 = p.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6, "percentages sum {sum}");
    }

    #[test]
    fn grouped_execution_matches_single_sample_bitwise() {
        let bundle = tiny_bundle();
        let orc = Orchestrator::builder().workers(2).build();
        orc.register_model("m", bundle.clone());
        let inputs: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![0.1 * i as f64, -0.2 * i as f64, 0.05 * i as f64])
            .collect();
        for (i, x) in inputs.iter().enumerate() {
            orc.store().put_dense(&format!("in{i}"), x.clone());
        }
        let mut units: Vec<Unit> = (0..9)
            .map(|i| Unit::new(&format!("in{i}"), &format!("out{i}")))
            .collect();
        execute_group(&orc.ctx, "m", &mut units);
        for (i, x) in inputs.iter().enumerate() {
            assert_eq!(
                orc.store().get_dense(&format!("out{i}")).unwrap(),
                bundle.surrogate.predict(x).unwrap(),
                "row {i} diverged from the single-sample path"
            );
        }
        let stats = orc.serving_stats();
        assert_eq!(stats.requests, 9);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.per_model["m"], 9);
        assert_eq!(stats.batch_hist[3], 1); // 9 lands in [8, 16)
    }

    #[test]
    fn grouped_execution_attributes_errors_per_unit() {
        let orc = Orchestrator::builder().build();
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("good", vec![0.1, 0.2, 0.3]);
        orc.store().put_dense("bad", vec![0.1, 0.2]); // wrong width
        let mut units = vec![
            Unit::new("good", "out-good"),
            Unit::new("bad", "out-bad"),
            Unit::new("gone", "out-gone"),
        ];
        execute_group(&orc.ctx, "m", &mut units);
        assert_eq!(units[0].result, Some(Ok(())));
        assert!(matches!(
            units[1].result,
            Some(Err(RuntimeError::Inference(_)))
        ));
        assert!(matches!(
            units[2].result,
            Some(Err(RuntimeError::MissingTensor(_)))
        ));
        assert_eq!(orc.store().get_dense("out-good").unwrap().len(), 2);
        assert!(orc.store().get_dense("out-bad").is_err());
        let stats = orc.serving_stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 2);
    }

    #[test]
    fn registration_mid_stream_is_not_blocked_by_inference() {
        // The registry holds Arc'd entries: replacing a model while
        // requests are in flight must neither deadlock nor corrupt
        // results (each group runs entirely on the entry it grabbed).
        let orc = Orchestrator::builder().workers(2).build();
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        let client = orc.client();
        for _ in 0..20 {
            client.run_model("m", "in", "out").unwrap();
            orc.register_model("m", tiny_bundle());
        }
        assert!(orc.has_model("m"));
        assert_eq!(orc.serving_stats().requests, 20);
    }

    #[test]
    fn guarded_model_falls_back_and_counts() {
        let orc = Orchestrator::builder().workers(1).build();
        // Reject everything; the fallback is a deterministic "original
        // region" the output must bit-match.
        let guard =
            QualityGuard::new(|_, _| false).with_fallback(|x| x.iter().map(|v| 3.0 * v).collect());
        orc.register_guarded_model("g", tiny_bundle(), guard);
        let x = vec![0.5, -1.0, 2.0];
        orc.store().put_dense("in", x.clone());
        orc.client().run_model("g", "in", "out").unwrap();
        let out = orc.store().get_dense("out").unwrap();
        let expected: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        assert_eq!(out, expected, "fallback output must be the exact region");
        let stats = orc.serving_stats();
        assert_eq!(stats.quality_fallbacks, 1);
        assert_eq!(stats.quality_hits, 0);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn guarded_model_without_fallback_rejects() {
        let orc = Orchestrator::builder().workers(1).build();
        orc.register_guarded_model("g", tiny_bundle(), QualityGuard::new(|_, _| false));
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        let err = orc.client().run_model("g", "in", "out").unwrap_err();
        assert!(matches!(err, RuntimeError::QualityRejected(_)));
        assert!(orc.store().get_dense("out").is_err(), "no output stored");
        let stats = orc.serving_stats();
        assert_eq!(stats.quality_rejected, 1);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn metrics_snapshot_reports_queue_wait_stages_and_text() {
        use crate::metrics::{QUEUE_WAIT_SECONDS, STAGE_SECONDS};
        let orc = Orchestrator::builder().workers(1).build();
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        let client = orc.client();
        for _ in 0..4 {
            client.run_model("m", "in", "out").unwrap();
        }
        let snap = orc.metrics_snapshot();
        let wait = snap
            .find_histogram(QUEUE_WAIT_SECONDS, &[("model", "m")])
            .expect("queue-wait histogram registered");
        assert_eq!(wait.count, 4, "one queue-wait sample per request");
        let infer = snap
            .find_histogram(STAGE_SECONDS, &[("model", "m"), ("stage", "infer")])
            .expect("infer stage histogram registered");
        assert!(infer.count >= 1 && infer.sum > 0, "infer stage timed");
        assert_eq!(snap.counter_total(crate::metrics::REQUESTS_TOTAL), 4);
        let text = orc.metrics_text();
        assert!(text.contains("hpcnet_serving_requests_total{model=\"m\"} 4"));
        assert!(text.contains("hpcnet_serving_queue_wait_seconds_count{model=\"m\"} 4"));
        // The snapshot serializes.
        assert!(snap.to_json().contains("hpcnet_serving_batch_size"));
    }

    #[test]
    fn quality_events_land_in_the_ring() {
        let orc = Orchestrator::builder().workers(1).build();
        let guard =
            QualityGuard::new(|_, _| false).with_fallback(|x| x.iter().map(|v| 2.0 * v).collect());
        orc.register_guarded_model("g", tiny_bundle(), guard);
        orc.store().put_dense("in", vec![0.5, -1.0, 2.0]);
        orc.client().run_model("g", "in", "out").unwrap();
        let snap = orc.metrics_snapshot();
        let events = snap.events_of_kind(crate::metrics::EVENT_QUALITY_FALLBACK);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "g");
        assert_eq!(events[0].message, "in");
        assert!(events[0].value.is_finite(), "carries the rejected output");
        // Guard and fallback stage time was carved out of infer.
        let guard_h = snap
            .find_histogram(
                crate::metrics::STAGE_SECONDS,
                &[("model", "g"), ("stage", "guard")],
            )
            .expect("guard stage histogram registered");
        assert_eq!(guard_h.count, 1);
    }

    #[test]
    fn disabled_telemetry_serves_but_records_nothing() {
        let orc = Orchestrator::builder().workers(1).telemetry(false).build();
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        orc.client().run_model("m", "in", "out").unwrap();
        assert_eq!(orc.store().get_dense("out").unwrap().len(), 2);
        let stats = orc.serving_stats();
        assert_eq!(stats.requests, 0, "stats view is empty when disabled");
        let snap = orc.metrics_snapshot();
        assert!(
            snap.find_histogram(crate::metrics::BATCH_SIZE, &[])
                .unwrap()
                .count
                == 0
        );
        assert!(snap.events.is_empty());
    }

    #[test]
    fn trace_dump_retains_error_trace_with_stage_children() {
        let orc = Orchestrator::builder().workers(1).build();
        orc.register_model("m", tiny_bundle());
        let client = orc.client();
        // A missing input fails the request; tail sampling must retain
        // its trace regardless of the one-in-N sampler.
        let err = client.run_model("m", "gone", "out").unwrap_err();
        assert!(matches!(err, RuntimeError::MissingTensor(_)));
        let traces = orc.trace_dump();
        let t = traces
            .iter()
            .find(|t| t.has_tag(tags::ERROR))
            .expect("error trace retained");
        let root = t.root().expect("root span");
        assert_eq!(root.name, stage_names::REQUEST);
        assert_eq!(root.service, TRACE_SERVICE);
        assert!(root.status.is_error());
        assert!(root
            .annotations
            .iter()
            .any(|(k, v)| k == "model" && v == "m"));
        for stage in [
            stage_names::QUEUE_WAIT,
            stage_names::FETCH,
            stage_names::ENCODE,
            stage_names::INFER,
        ] {
            let span = t
                .span_named(stage)
                .unwrap_or_else(|| panic!("stage child `{stage}` missing; spans: {:?}", t.spans));
            assert_eq!(span.parent, Some(root.span_id));
        }
        // Client handles expose the same dump as the orchestrator.
        assert_eq!(client.trace_dump().len(), traces.len());
    }

    #[test]
    fn slow_request_log_captures_full_breakdown() {
        // A zero threshold makes every request "slow": each one must be
        // retained, tagged, counted, and logged with per-stage timings.
        let orc = Orchestrator::builder()
            .workers(1)
            .slow_request_threshold(Duration::ZERO)
            .build();
        assert_eq!(orc.slow_request_threshold(), Duration::ZERO);
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        orc.client().run_model("m", "in", "out").unwrap();
        let traces = orc.trace_dump();
        assert!(traces.iter().any(|t| t.has_tag(tags::SLOW)));
        let log = orc.slow_log();
        assert_eq!(log.len(), 1, "one slow line per offending request");
        let line: serde_json::Value = serde_json::from_str(&log[0]).expect("valid JSON line");
        let slow = &line["slow_request"];
        assert_eq!(slow["model"], "m");
        assert_eq!(slow["pairs"], 1);
        let stages = slow["stages_micros"]
            .as_object()
            .expect("per-stage breakdown");
        for stage in [
            stage_names::QUEUE_WAIT,
            stage_names::FETCH,
            stage_names::ENCODE,
            stage_names::INFER,
        ] {
            assert!(stages.contains_key(stage), "stage `{stage}` in {stages:?}");
        }
        assert!(slow["trace_id"].as_str().is_some());
        assert_eq!(
            orc.metrics_snapshot()
                .counter_total(crate::metrics::SLOW_REQUESTS_TOTAL),
            1
        );
    }

    #[test]
    fn propagated_context_joins_the_callers_trace() {
        let orc = Orchestrator::builder().workers(1).build();
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        let upstream = TraceContext::root();
        let parent = trace::SpanId(trace::next_id());
        let ctx = upstream.child_of(parent);
        // A failing request: the error rule retains it deterministically.
        let err = orc
            .client()
            .run_model_with_context("m", "missing", "out2", None, Some(ctx));
        assert!(err.is_err());
        let traces = orc.trace_dump();
        let t = traces
            .iter()
            .find(|t| t.trace_id == upstream.trace_id)
            .expect("server half recorded under the caller's trace id");
        let req = t.span_named(stage_names::REQUEST).expect("request span");
        assert_eq!(
            req.parent,
            Some(parent),
            "request span hangs under the propagated parent"
        );
    }

    #[test]
    fn guard_fallback_traces_are_always_retained() {
        let orc = Orchestrator::builder().workers(1).build();
        let guard =
            QualityGuard::new(|_, _| false).with_fallback(|x| x.iter().map(|v| 2.0 * v).collect());
        orc.register_guarded_model("g", tiny_bundle(), guard);
        orc.store().put_dense("in", vec![0.5, -1.0, 2.0]);
        orc.client().run_model("g", "in", "out").unwrap();
        let traces = orc.trace_dump();
        let t = traces
            .iter()
            .find(|t| t.has_tag(tags::FALLBACK))
            .expect("guard-fallback trace retained");
        assert!(
            t.span_named(stage_names::FALLBACK).is_some(),
            "fallback stage span present; spans: {:?}",
            t.spans
        );
        assert!(!t.has_error(), "the fallback answered, not an error");
    }

    #[test]
    fn disabled_telemetry_records_no_traces() {
        let orc = Orchestrator::builder()
            .workers(1)
            .telemetry(false)
            .slow_request_threshold(Duration::ZERO)
            .build();
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        orc.client().run_model("m", "in", "out").unwrap();
        assert!(orc.trace_dump().is_empty());
        assert!(orc.slow_log().is_empty());
    }

    #[test]
    fn accepting_guard_counts_hits_and_keeps_bitwise_output() {
        let bundle = tiny_bundle();
        let orc = Orchestrator::builder().workers(1).build();
        orc.register_model("g", bundle.clone());
        orc.set_quality_guard("g", QualityGuard::new(|_, _| true))
            .unwrap();
        let x = vec![0.2, 0.4, -0.6];
        orc.store().put_dense("in", x.clone());
        orc.client().run_model("g", "in", "out").unwrap();
        assert_eq!(
            orc.store().get_dense("out").unwrap(),
            bundle.surrogate.predict(&x).unwrap(),
            "an accepting guard must not perturb the surrogate output"
        );
        assert_eq!(orc.serving_stats().quality_hits, 1);
        assert!(orc
            .set_quality_guard("ghost", QualityGuard::new(|_, _| true))
            .is_err());
    }
}
