//! The inference server ("Orchestrator"): model registry + a worker pool
//! with request coalescing.
//!
//! Workers block on a shared request channel; on wake-up each worker
//! drains whatever else is already queued (up to [`MAX_COALESCE`]
//! requests), groups the drained requests by model name, and executes one
//! batched forward pass per group — the process-local analog of dynamic
//! batching in a GPU-side inference server. Batched outputs are
//! bit-identical to the single-sample path because every kernel on the
//! path treats rows independently in the same accumulation order.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use hpcnet_nn::train::FeatureScaler;
use hpcnet_nn::{Autoencoder, SurrogateNet};
use hpcnet_tensor::{Csr, Matrix};
use parking_lot::{Mutex, RwLock};

use crate::perf::ServingStats;
use crate::store::{TensorStore, TensorValue};
use crate::{Result, RuntimeError};

/// Everything needed to serve one surrogate: the trained network (MLP or
/// CNN), the optional feature-reduction encoder, and the scalers fitted at
/// training time.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// The surrogate network.
    pub surrogate: SurrogateNet,
    /// Optional autoencoder whose encoder reduces the input first.
    pub autoencoder: Option<Autoencoder>,
    /// Scaler applied to the (reduced) input before the surrogate.
    pub scaler: Option<FeatureScaler>,
    /// Scaler whose inverse maps the surrogate's standardized outputs back
    /// to physical units.
    pub output_scaler: Option<FeatureScaler>,
}

impl ModelBundle {
    /// Save the bundle to a file (the `./saved_net.pt` of Listing 2).
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.to_json())
            .map_err(|e| RuntimeError::Inference(format!("saving bundle: {e}")))
    }

    /// Load a bundle from a file.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| RuntimeError::Inference(format!("loading bundle: {e}")))?;
        Self::from_json(&json)
    }

    /// Serialize to the checkpoint/share JSON format (paper §6.1).
    pub fn to_json(&self) -> String {
        let obj = serde_json::json!({
            "surrogate": self.surrogate,
            "autoencoder": self.autoencoder,
            "scaler": self.scaler,
            "output_scaler": self.output_scaler,
        });
        obj.to_string()
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        let v: serde_json::Value = serde_json::from_str(s)
            .map_err(|e| RuntimeError::Inference(format!("bad JSON: {e}")))?;
        let surrogate: SurrogateNet = serde_json::from_value(v["surrogate"].clone())
            .map_err(|e| RuntimeError::Inference(format!("bad surrogate: {e}")))?;
        let autoencoder: Option<Autoencoder> = serde_json::from_value(v["autoencoder"].clone())
            .map_err(|e| RuntimeError::Inference(format!("bad autoencoder: {e}")))?;
        let scaler: Option<FeatureScaler> = serde_json::from_value(v["scaler"].clone())
            .map_err(|e| RuntimeError::Inference(format!("bad scaler: {e}")))?;
        let output_scaler: Option<FeatureScaler> =
            serde_json::from_value(v["output_scaler"].clone())
                .map_err(|e| RuntimeError::Inference(format!("bad output scaler: {e}")))?;
        Ok(ModelBundle {
            surrogate,
            autoencoder,
            scaler,
            output_scaler,
        })
    }
}

/// Cumulative online-time breakdown (paper §7.3: fetch / encode / load /
/// infer shares).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineTimers {
    /// Time fetching input tensors from the store.
    pub fetch: Duration,
    /// Time running the encoder (feature reduction).
    pub encode: Duration,
    /// Time loading/deserializing models into the registry.
    pub model_load: Duration,
    /// Time running the surrogate and storing its output.
    pub infer: Duration,
}

impl OnlineTimers {
    /// Percentage breakdown `[fetch, encode, load, infer]`.
    pub fn percentages(&self) -> [f64; 4] {
        let total = (self.fetch + self.encode + self.model_load + self.infer).as_secs_f64();
        if total == 0.0 {
            return [0.0; 4];
        }
        [
            100.0 * self.fetch.as_secs_f64() / total,
            100.0 * self.encode.as_secs_f64() / total,
            100.0 * self.model_load.as_secs_f64() / total,
            100.0 * self.infer.as_secs_f64() / total,
        ]
    }
}

pub(crate) enum Request {
    RunModel {
        model: String,
        in_key: String,
        out_key: String,
        reply: Sender<Result<()>>,
    },
    RunBatch {
        model: String,
        pairs: Vec<(String, String)>,
        reply: Sender<Vec<Result<()>>>,
    },
    Shutdown,
}

/// Most requests a worker folds into one coalescing round. Bounds both the
/// latency of the first drained request and peak batch memory.
const MAX_COALESCE: usize = 512;

type Registry = Arc<RwLock<HashMap<String, Arc<ModelBundle>>>>;

/// State shared between the orchestrator handle and its workers.
#[derive(Clone)]
struct ServerCtx {
    store: TensorStore,
    registry: Registry,
    timers: Arc<Mutex<OnlineTimers>>,
    stats: Arc<Mutex<ServingStats>>,
}

/// The inference server. Owns the model registry; executes `run_model` /
/// `run_model_batch` requests from clients on a pool of worker threads
/// (the process-local analog of the GPU-side RedisAI server).
pub struct Orchestrator {
    ctx: ServerCtx,
    tx: Sender<Request>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Orchestrator {
    /// Launch the orchestrator over a (possibly shared) store with one
    /// worker per available core (capped at 8).
    pub fn launch(store: TensorStore) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8);
        Self::launch_with_workers(store, workers)
    }

    /// Launch with an explicit worker-pool size (at least one worker).
    pub fn launch_with_workers(store: TensorStore, workers: usize) -> Self {
        let ctx = ServerCtx {
            store,
            registry: Arc::default(),
            timers: Arc::default(),
            stats: Arc::default(),
        };
        let (tx, rx) = unbounded::<Request>();
        let handles = (0..workers.max(1))
            .map(|_| {
                let ctx = ctx.clone();
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(&ctx, &rx))
            })
            .collect();
        Orchestrator {
            ctx,
            tx,
            workers: handles,
        }
    }

    /// The shared store.
    pub fn store(&self) -> &TensorStore {
        &self.ctx.store
    }

    /// Number of worker threads serving requests.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Register a model bundle under a name (Listing 2's
    /// `set_model_from_file`). Load time is charged to the §7.3 breakdown.
    pub fn register_model(&self, name: &str, bundle: ModelBundle) {
        let t0 = Instant::now();
        self.ctx
            .registry
            .write()
            .insert(name.to_string(), Arc::new(bundle));
        self.ctx.timers.lock().model_load += t0.elapsed();
    }

    /// Register from the serialized JSON form, charging deserialization to
    /// the model-load timer (the file-load path of Listing 2).
    pub fn register_model_from_json(&self, name: &str, json: &str) -> Result<()> {
        let t0 = Instant::now();
        let bundle = ModelBundle::from_json(json)?;
        self.ctx
            .registry
            .write()
            .insert(name.to_string(), Arc::new(bundle));
        self.ctx.timers.lock().model_load += t0.elapsed();
        Ok(())
    }

    /// Listing 2's `set_model_from_file`: load a saved bundle from disk
    /// and register it. Load time is charged to the §7.3 breakdown.
    pub fn set_model_from_file(&self, name: &str, path: &std::path::Path) -> Result<()> {
        let t0 = Instant::now();
        let bundle = ModelBundle::load(path)?;
        self.ctx
            .registry
            .write()
            .insert(name.to_string(), Arc::new(bundle));
        self.ctx.timers.lock().model_load += t0.elapsed();
        Ok(())
    }

    /// Is a model registered?
    pub fn has_model(&self, name: &str) -> bool {
        self.ctx.registry.read().contains_key(name)
    }

    /// Request channel used by [`crate::Client`].
    pub(crate) fn sender(&self) -> Sender<Request> {
        self.tx.clone()
    }

    /// Snapshot of the cumulative online-time breakdown.
    pub fn online_timers(&self) -> OnlineTimers {
        *self.ctx.timers.lock()
    }

    /// Snapshot of the cumulative serving statistics (request counts per
    /// model, batch-size histogram, throughput).
    pub fn serving_stats(&self) -> ServingStats {
        self.ctx.stats.lock().clone()
    }

    /// Synchronously execute an inference on the calling thread (also the
    /// path workers use, with a single-request group).
    pub fn run_model_blocking(&self, model: &str, in_key: &str, out_key: &str) -> Result<()> {
        let mut units = vec![Unit::new(in_key, out_key)];
        execute_group(&self.ctx, model, &mut units);
        units.pop().expect("one unit").take_result()
    }
}

impl Drop for Orchestrator {
    fn drop(&mut self) {
        // Each worker consumes exactly one Shutdown and exits.
        for _ in &self.workers {
            let _ = self.tx.send(Request::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

pub(crate) type ServerRequest = Request;

/// How a coalesced request answers its client.
enum Reply {
    Single(Sender<Result<()>>),
    Batch(Sender<Vec<Result<()>>>),
}

/// One client request drained from the channel, with per-pair result slots.
struct PendingRequest {
    model: String,
    pairs: Vec<(String, String)>,
    results: Vec<Option<Result<()>>>,
    reply: Reply,
}

impl PendingRequest {
    /// `req` must not be `Shutdown` (the worker loop filters it).
    fn from_request(req: Request) -> Self {
        match req {
            Request::RunModel {
                model,
                in_key,
                out_key,
                reply,
            } => PendingRequest {
                model,
                pairs: vec![(in_key, out_key)],
                results: vec![None],
                reply: Reply::Single(reply),
            },
            Request::RunBatch {
                model,
                pairs,
                reply,
            } => {
                let n = pairs.len();
                PendingRequest {
                    model,
                    pairs,
                    results: vec![None; n],
                    reply: Reply::Batch(reply),
                }
            }
            Request::Shutdown => unreachable!("Shutdown is handled by the worker loop"),
        }
    }

    fn deliver(self) {
        let fill = |r: Option<Result<()>>| {
            r.unwrap_or_else(|| Err(RuntimeError::Inference("request dropped".into())))
        };
        match self.reply {
            Reply::Single(tx) => {
                let r = self.results.into_iter().next().map(fill).unwrap_or(Ok(()));
                let _ = tx.send(r);
            }
            Reply::Batch(tx) => {
                let _ = tx.send(self.results.into_iter().map(fill).collect());
            }
        }
    }
}

/// One `(in_key, out_key)` pair flowing through a batched execution.
struct Unit {
    in_key: String,
    out_key: String,
    result: Option<Result<()>>,
}

impl Unit {
    fn new(in_key: &str, out_key: &str) -> Self {
        Unit {
            in_key: in_key.to_string(),
            out_key: out_key.to_string(),
            result: None,
        }
    }

    fn pending(&self) -> bool {
        self.result.is_none()
    }

    fn take_result(self) -> Result<()> {
        self.result
            .unwrap_or_else(|| Err(RuntimeError::Inference("request not executed".into())))
    }
}

/// Worker body: block for one request, drain the backlog, execute grouped
/// by model, answer every client, repeat.
fn worker_loop(ctx: &ServerCtx, rx: &Receiver<Request>) {
    loop {
        let first = match rx.recv() {
            Ok(Request::Shutdown) | Err(_) => return,
            Ok(req) => req,
        };
        let mut pending = vec![PendingRequest::from_request(first)];
        let mut queued = pending[0].pairs.len();
        let mut stop = false;
        while queued < MAX_COALESCE {
            match rx.try_recv() {
                Ok(Request::Shutdown) => {
                    stop = true;
                    break;
                }
                Ok(req) => {
                    let p = PendingRequest::from_request(req);
                    queued += p.pairs.len();
                    pending.push(p);
                }
                Err(_) => break,
            }
        }
        process_round(ctx, &mut pending);
        for p in pending {
            p.deliver();
        }
        if stop {
            return;
        }
    }
}

/// Group the drained requests' pairs by model name (preserving arrival
/// order within each group) and execute one batched pass per group.
fn process_round(ctx: &ServerCtx, pending: &mut [PendingRequest]) {
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
    for (pi, p) in pending.iter().enumerate() {
        let slots = groups.entry(p.model.clone()).or_insert_with(|| {
            order.push(p.model.clone());
            Vec::new()
        });
        for qi in 0..p.pairs.len() {
            slots.push((pi, qi));
        }
    }
    for model in order {
        let slots = groups.remove(&model).expect("model was grouped");
        let mut units: Vec<Unit> = slots
            .iter()
            .map(|&(pi, qi)| {
                let (in_key, out_key) = &pending[pi].pairs[qi];
                Unit::new(in_key, out_key)
            })
            .collect();
        execute_group(ctx, &model, &mut units);
        for ((pi, qi), unit) in slots.into_iter().zip(units) {
            pending[pi].results[qi] = Some(unit.take_result());
        }
    }
}

/// Execute all `units` against one model as a batched pass: fetch every
/// input, encode as a batch, one `predict_batch`, scatter the output rows.
/// Errors are attributed per unit; every unit leaves with `Some` result.
fn execute_group(ctx: &ServerCtx, model: &str, units: &mut [Unit]) {
    let t_group = Instant::now();

    let t0 = Instant::now();
    let mut inputs: Vec<Option<TensorValue>> = units
        .iter_mut()
        .map(|u| match ctx.store.get(&u.in_key) {
            Ok(v) => Some(v),
            Err(e) => {
                u.result = Some(Err(e));
                None
            }
        })
        .collect();
    let fetch = t0.elapsed();

    // Clone the bundle Arc out of the registry: the read lock is NOT held
    // across encode/inference, so registrations never wait on a long batch
    // and a re-registration mid-batch can't change results mid-row.
    let bundle: Option<Arc<ModelBundle>> = ctx.registry.read().get(model).cloned();
    let Some(bundle) = bundle else {
        for u in units.iter_mut() {
            if u.pending() {
                u.result = Some(Err(RuntimeError::MissingModel(model.to_string())));
            }
        }
        finish_group(
            ctx,
            model,
            units,
            fetch,
            Duration::ZERO,
            Duration::ZERO,
            t_group.elapsed(),
        );
        return;
    };

    let t1 = Instant::now();
    let mut features: Vec<Option<Vec<f64>>> = (0..units.len()).map(|_| None).collect();
    encode_features(&bundle, units, &mut inputs, &mut features);
    let encode = t1.elapsed();

    let t2 = Instant::now();
    infer_and_scatter(ctx, &bundle, units, &mut features);
    let infer = t2.elapsed();

    finish_group(ctx, model, units, fetch, encode, infer, t_group.elapsed());
}

fn finish_group(
    ctx: &ServerCtx,
    model: &str,
    units: &mut [Unit],
    fetch: Duration,
    encode: Duration,
    infer: Duration,
    busy: Duration,
) {
    for u in units.iter_mut() {
        if u.pending() {
            u.result = Some(Err(RuntimeError::Inference("request not executed".into())));
        }
    }
    {
        let mut t = ctx.timers.lock();
        t.fetch += fetch;
        t.encode += encode;
        t.infer += infer;
    }
    let errors = units
        .iter()
        .filter(|u| matches!(u.result, Some(Err(_))))
        .count();
    ctx.stats
        .lock()
        .record_group(model, units.len(), errors, busy);
}

/// Feature reduction for a group (paper §4.2's online API): without an
/// autoencoder inputs pass through (sparse rows densify to the model's
/// input width); with one, dense and sparse inputs are batched separately
/// through the encoder — the sparse path never densifies the raw input.
fn encode_features(
    bundle: &ModelBundle,
    units: &mut [Unit],
    inputs: &mut [Option<TensorValue>],
    features: &mut [Option<Vec<f64>>],
) {
    match &bundle.autoencoder {
        None => {
            for (i, inp) in inputs.iter_mut().enumerate() {
                if let Some(v) = inp.take() {
                    features[i] = Some(match v {
                        TensorValue::Dense(d) => d,
                        TensorValue::Sparse(s) => s.to_dense_vector(),
                    });
                }
            }
        }
        Some(ae) => {
            let mut dense: Vec<(usize, Vec<f64>)> = Vec::new();
            let mut sparse: Vec<(usize, Csr)> = Vec::new();
            for (i, inp) in inputs.iter_mut().enumerate() {
                match inp.take() {
                    Some(TensorValue::Dense(d)) => dense.push((i, d)),
                    Some(TensorValue::Sparse(s)) => sparse.push((i, s)),
                    None => {}
                }
            }
            encode_dense_group(ae, units, features, dense);
            encode_sparse_group(ae, units, features, sparse);
        }
    }
}

fn encode_dense_group(
    ae: &Autoencoder,
    units: &mut [Unit],
    features: &mut [Option<Vec<f64>>],
    group: Vec<(usize, Vec<f64>)>,
) {
    if group.is_empty() {
        return;
    }
    if group.len() > 1 && group.iter().all(|(_, v)| v.len() == ae.input_dim()) {
        let mut data = Vec::with_capacity(group.len() * ae.input_dim());
        for (_, v) in &group {
            data.extend_from_slice(v);
        }
        if let Ok(x) = Matrix::from_vec(group.len(), ae.input_dim(), data) {
            if let Ok(encoded) = ae.encode_batch(&x) {
                for (r, (i, _)) in group.iter().enumerate() {
                    features[*i] = Some(encoded.row(r).to_vec());
                }
                return;
            }
        }
    }
    // Single sample, ragged widths, or a failed batch: encode one by one
    // so errors attach to the right request.
    for (i, v) in group {
        match ae.encode(&v) {
            Ok(f) => features[i] = Some(f),
            Err(e) => units[i].result = Some(Err(RuntimeError::Inference(e.to_string()))),
        }
    }
}

fn encode_sparse_group(
    ae: &Autoencoder,
    units: &mut [Unit],
    features: &mut [Option<Vec<f64>>],
    group: Vec<(usize, Csr)>,
) {
    if group.is_empty() {
        return;
    }
    let stackable = group.len() > 1
        && group
            .iter()
            .all(|(_, s)| s.nrows() == 1 && s.ncols() == ae.input_dim());
    if stackable {
        if let Some(x) = vstack_single_rows(&group) {
            if let Ok(encoded) = ae.encode_sparse(&x) {
                for (r, (i, _)) in group.iter().enumerate() {
                    features[*i] = Some(encoded.row(r).to_vec());
                }
                return;
            }
        }
    }
    for (i, s) in group {
        match ae.encode_sparse(&s) {
            Ok(m) => features[i] = Some(m.into_vec()),
            Err(e) => units[i].result = Some(Err(RuntimeError::Inference(e.to_string()))),
        }
    }
}

/// Stack single-row CSR matrices into one multi-row CSR without
/// densifying: per-row index/value runs concatenate unchanged, so row `r`
/// of the stack is exactly input `r`.
fn vstack_single_rows(group: &[(usize, Csr)]) -> Option<Csr> {
    let ncols = group.first()?.1.ncols();
    let nnz: usize = group.iter().map(|(_, s)| s.nnz()).sum();
    let mut indptr = Vec::with_capacity(group.len() + 1);
    indptr.push(0usize);
    let mut indices = Vec::with_capacity(nnz);
    let mut data = Vec::with_capacity(nnz);
    for (_, s) in group {
        indices.extend_from_slice(s.indices());
        data.extend_from_slice(s.values());
        indptr.push(indices.len());
    }
    Csr::from_raw(group.len(), ncols, indptr, indices, data).ok()
}

/// Scale features, run one batched forward per feature width (normally a
/// single batch), inverse-scale each output row, and store it under the
/// unit's `out_key`. Each step applies per row exactly as the
/// single-sample path does, so outputs are bit-identical to `predict`.
fn infer_and_scatter(
    ctx: &ServerCtx,
    bundle: &ModelBundle,
    units: &mut [Unit],
    features: &mut [Option<Vec<f64>>],
) {
    if let Some(scaler) = &bundle.scaler {
        for f in features.iter_mut().flatten() {
            scaler.transform_vec(f);
        }
    }
    let mut width_groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, f) in features.iter().enumerate() {
        if let (true, Some(f)) = (units[i].pending(), f) {
            match width_groups.iter_mut().find(|(w, _)| *w == f.len()) {
                Some((_, members)) => members.push(i),
                None => width_groups.push((f.len(), vec![i])),
            }
        }
    }
    for (width, members) in width_groups {
        let mut data = Vec::with_capacity(members.len() * width);
        for &i in &members {
            data.extend_from_slice(features[i].as_ref().expect("feature was grouped"));
        }
        let batched = Matrix::from_vec(members.len(), width, data)
            .map_err(|e| RuntimeError::Inference(e.to_string()))
            .and_then(|x| {
                bundle
                    .surrogate
                    .predict_batch(&x)
                    .map_err(|e| RuntimeError::Inference(e.to_string()))
            });
        match batched {
            Ok(out) => {
                for (r, &i) in members.iter().enumerate() {
                    let mut y = out.row(r).to_vec();
                    if let Some(os) = &bundle.output_scaler {
                        os.inverse_transform_vec(&mut y);
                    }
                    ctx.store.put_dense(&units[i].out_key, y);
                    units[i].result = Some(Ok(()));
                }
            }
            Err(_) => {
                // The batch failed as a whole (e.g. width mismatch with the
                // model): fall back to per-unit predicts so the error lands
                // on the offending request(s).
                for &i in &members {
                    let f = features[i].as_ref().expect("feature was grouped");
                    match bundle.surrogate.predict(f) {
                        Ok(mut y) => {
                            if let Some(os) = &bundle.output_scaler {
                                os.inverse_transform_vec(&mut y);
                            }
                            ctx.store.put_dense(&units[i].out_key, y);
                            units[i].result = Some(Ok(()));
                        }
                        Err(e) => {
                            units[i].result = Some(Err(RuntimeError::Inference(e.to_string())));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_nn::{Mlp, Topology};
    use hpcnet_tensor::rng::seeded;

    fn tiny_bundle() -> ModelBundle {
        let mlp = Mlp::new(&Topology::mlp(vec![3, 4, 2]), &mut seeded(1, "srv")).unwrap();
        ModelBundle {
            surrogate: mlp.into(),
            autoencoder: None,
            scaler: None,
            output_scaler: None,
        }
    }

    #[test]
    fn run_model_produces_output_tensor() {
        let orc = Orchestrator::launch(TensorStore::new());
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        orc.run_model_blocking("m", "in", "out").unwrap();
        let out = orc.store().get_dense("out").unwrap();
        assert_eq!(out.len(), 2);
        let timers = orc.online_timers();
        assert!(timers.fetch + timers.infer > Duration::ZERO);
    }

    #[test]
    fn missing_model_and_tensor_error() {
        let orc = Orchestrator::launch(TensorStore::new());
        assert!(matches!(
            orc.run_model_blocking("ghost", "in", "out"),
            Err(RuntimeError::MissingTensor(_)) | Err(RuntimeError::MissingModel(_))
        ));
        orc.store().put_dense("in", vec![1.0, 2.0, 3.0]);
        assert_eq!(
            orc.run_model_blocking("ghost", "in", "out"),
            Err(RuntimeError::MissingModel("ghost".into()))
        );
    }

    #[test]
    fn bundle_json_roundtrip_preserves_inference() {
        let bundle = tiny_bundle();
        let json = bundle.to_json();
        let orc = Orchestrator::launch(TensorStore::new());
        orc.register_model_from_json("m", &json).unwrap();
        orc.store().put_dense("in", vec![0.5, -0.5, 0.25]);
        orc.run_model_blocking("m", "in", "out").unwrap();
        let via_registry = orc.store().get_dense("out").unwrap();
        let direct = bundle.surrogate.predict(&[0.5, -0.5, 0.25]).unwrap();
        assert_eq!(via_registry, direct);
        assert!(orc.online_timers().model_load > Duration::ZERO);
    }

    #[test]
    fn sparse_input_with_autoencoder_never_densifies_width() {
        let mut rng = seeded(2, "srv-ae");
        let ae = Autoencoder::new(20, 4, &mut rng).unwrap();
        let mlp = Mlp::new(&Topology::mlp(vec![4, 6, 2]), &mut rng).unwrap();
        let bundle = ModelBundle {
            surrogate: mlp.into(),
            autoencoder: Some(ae),
            scaler: None,
            output_scaler: None,
        };
        let orc = Orchestrator::launch(TensorStore::new());
        orc.register_model("sparse-m", bundle);
        let mut coo = hpcnet_tensor::Coo::new(1, 20);
        coo.push(0, 3, 1.0);
        coo.push(0, 17, -2.0);
        orc.store().put_sparse("in", coo.to_csr());
        orc.run_model_blocking("sparse-m", "in", "out").unwrap();
        assert_eq!(orc.store().get_dense("out").unwrap().len(), 2);
    }

    #[test]
    fn bundle_file_roundtrip_and_set_model_from_file() {
        let bundle = tiny_bundle();
        let dir = std::env::temp_dir().join("hpcnet-test-bundle");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("saved_net.json");
        bundle.save(&path).unwrap();
        let orc = Orchestrator::launch(TensorStore::new());
        orc.set_model_from_file("m", &path).unwrap();
        assert!(orc.has_model("m"));
        orc.store().put_dense("in", vec![0.3, 0.2, 0.1]);
        orc.run_model_blocking("m", "in", "out").unwrap();
        assert_eq!(
            orc.store().get_dense("out").unwrap(),
            bundle.surrogate.predict(&[0.3, 0.2, 0.1]).unwrap()
        );
        assert!(ModelBundle::load(&dir.join("missing.json")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn percentages_sum_to_hundred_when_nonzero() {
        let orc = Orchestrator::launch(TensorStore::new());
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        for _ in 0..5 {
            orc.run_model_blocking("m", "in", "out").unwrap();
        }
        let p = orc.online_timers().percentages();
        let sum: f64 = p.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6, "percentages sum {sum}");
    }

    #[test]
    fn grouped_execution_matches_single_sample_bitwise() {
        let bundle = tiny_bundle();
        let orc = Orchestrator::launch_with_workers(TensorStore::new(), 2);
        orc.register_model("m", bundle.clone());
        let inputs: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![0.1 * i as f64, -0.2 * i as f64, 0.05 * i as f64])
            .collect();
        for (i, x) in inputs.iter().enumerate() {
            orc.store().put_dense(&format!("in{i}"), x.clone());
        }
        let mut units: Vec<Unit> = (0..9)
            .map(|i| Unit::new(&format!("in{i}"), &format!("out{i}")))
            .collect();
        execute_group(&orc.ctx, "m", &mut units);
        for (i, x) in inputs.iter().enumerate() {
            assert_eq!(
                orc.store().get_dense(&format!("out{i}")).unwrap(),
                bundle.surrogate.predict(x).unwrap(),
                "row {i} diverged from the single-sample path"
            );
        }
        let stats = orc.serving_stats();
        assert_eq!(stats.requests, 9);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.per_model["m"], 9);
        assert_eq!(stats.batch_hist[3], 1); // 9 lands in [8, 16)
    }

    #[test]
    fn grouped_execution_attributes_errors_per_unit() {
        let orc = Orchestrator::launch(TensorStore::new());
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("good", vec![0.1, 0.2, 0.3]);
        orc.store().put_dense("bad", vec![0.1, 0.2]); // wrong width
        let mut units = vec![
            Unit::new("good", "out-good"),
            Unit::new("bad", "out-bad"),
            Unit::new("gone", "out-gone"),
        ];
        execute_group(&orc.ctx, "m", &mut units);
        assert_eq!(units[0].result, Some(Ok(())));
        assert!(matches!(
            units[1].result,
            Some(Err(RuntimeError::Inference(_)))
        ));
        assert!(matches!(
            units[2].result,
            Some(Err(RuntimeError::MissingTensor(_)))
        ));
        assert_eq!(orc.store().get_dense("out-good").unwrap().len(), 2);
        assert!(orc.store().get_dense("out-bad").is_err());
        let stats = orc.serving_stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 2);
    }

    #[test]
    fn registration_mid_stream_is_not_blocked_by_inference() {
        // The registry holds Arc'd bundles: replacing a model while
        // requests are in flight must neither deadlock nor corrupt
        // results (each group runs entirely on the bundle it grabbed).
        let orc = Orchestrator::launch_with_workers(TensorStore::new(), 2);
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        for _ in 0..20 {
            orc.run_model_blocking("m", "in", "out").unwrap();
            orc.register_model("m", tiny_bundle());
        }
        assert!(orc.has_model("m"));
        assert_eq!(orc.serving_stats().requests, 20);
    }
}
