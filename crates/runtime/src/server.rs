//! The inference server ("Orchestrator"): model registry + worker thread.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use hpcnet_nn::train::FeatureScaler;
use hpcnet_nn::{Autoencoder, SurrogateNet};
use parking_lot::{Mutex, RwLock};

use crate::store::{TensorStore, TensorValue};
use crate::{Result, RuntimeError};

/// Everything needed to serve one surrogate: the trained network (MLP or
/// CNN), the optional feature-reduction encoder, and the scalers fitted at
/// training time.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// The surrogate network.
    pub surrogate: SurrogateNet,
    /// Optional autoencoder whose encoder reduces the input first.
    pub autoencoder: Option<Autoencoder>,
    /// Scaler applied to the (reduced) input before the surrogate.
    pub scaler: Option<FeatureScaler>,
    /// Scaler whose inverse maps the surrogate's standardized outputs back
    /// to physical units.
    pub output_scaler: Option<FeatureScaler>,
}

impl ModelBundle {
    /// Save the bundle to a file (the `./saved_net.pt` of Listing 2).
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.to_json())
            .map_err(|e| RuntimeError::Inference(format!("saving bundle: {e}")))
    }

    /// Load a bundle from a file.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| RuntimeError::Inference(format!("loading bundle: {e}")))?;
        Self::from_json(&json)
    }

    /// Serialize to the checkpoint/share JSON format (paper §6.1).
    pub fn to_json(&self) -> String {
        let obj = serde_json::json!({
            "surrogate": self.surrogate,
            "autoencoder": self.autoencoder,
            "scaler": self.scaler,
            "output_scaler": self.output_scaler,
        });
        obj.to_string()
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        let v: serde_json::Value =
            serde_json::from_str(s).map_err(|e| RuntimeError::Inference(format!("bad JSON: {e}")))?;
        let surrogate: SurrogateNet = serde_json::from_value(v["surrogate"].clone())
            .map_err(|e| RuntimeError::Inference(format!("bad surrogate: {e}")))?;
        let autoencoder: Option<Autoencoder> = serde_json::from_value(v["autoencoder"].clone())
            .map_err(|e| RuntimeError::Inference(format!("bad autoencoder: {e}")))?;
        let scaler: Option<FeatureScaler> = serde_json::from_value(v["scaler"].clone())
            .map_err(|e| RuntimeError::Inference(format!("bad scaler: {e}")))?;
        let output_scaler: Option<FeatureScaler> = serde_json::from_value(v["output_scaler"].clone())
            .map_err(|e| RuntimeError::Inference(format!("bad output scaler: {e}")))?;
        Ok(ModelBundle { surrogate, autoencoder, scaler, output_scaler })
    }
}

/// Cumulative online-time breakdown (paper §7.3: fetch / encode / load /
/// infer shares).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineTimers {
    /// Time fetching input tensors from the store.
    pub fetch: Duration,
    /// Time running the encoder (feature reduction).
    pub encode: Duration,
    /// Time loading/deserializing models into the registry.
    pub model_load: Duration,
    /// Time running the surrogate and storing its output.
    pub infer: Duration,
}

impl OnlineTimers {
    /// Percentage breakdown `[fetch, encode, load, infer]`.
    pub fn percentages(&self) -> [f64; 4] {
        let total = (self.fetch + self.encode + self.model_load + self.infer).as_secs_f64();
        if total == 0.0 {
            return [0.0; 4];
        }
        [
            100.0 * self.fetch.as_secs_f64() / total,
            100.0 * self.encode.as_secs_f64() / total,
            100.0 * self.model_load.as_secs_f64() / total,
            100.0 * self.infer.as_secs_f64() / total,
        ]
    }
}

pub(crate) enum Request {
    RunModel { model: String, in_key: String, out_key: String, reply: Sender<Result<()>> },
    Shutdown,
}

/// The inference server. Owns the model registry; executes `run_model`
/// requests from clients on a dedicated worker thread (the process-local
/// analog of the GPU-side RedisAI server).
pub struct Orchestrator {
    store: TensorStore,
    registry: Arc<RwLock<HashMap<String, ModelBundle>>>,
    timers: Arc<Mutex<OnlineTimers>>,
    tx: Sender<Request>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Orchestrator {
    /// Launch the orchestrator over a (possibly shared) store.
    pub fn launch(store: TensorStore) -> Self {
        let registry: Arc<RwLock<HashMap<String, ModelBundle>>> = Arc::default();
        let timers: Arc<Mutex<OnlineTimers>> = Arc::default();
        let (tx, rx) = unbounded::<Request>();
        let worker_store = store.clone();
        let worker_registry = Arc::clone(&registry);
        let worker_timers = Arc::clone(&timers);
        let worker = std::thread::spawn(move || {
            while let Ok(req) = rx.recv() {
                match req {
                    Request::Shutdown => break,
                    Request::RunModel { model, in_key, out_key, reply } => {
                        let result = Self::execute(
                            &worker_store,
                            &worker_registry,
                            &worker_timers,
                            &model,
                            &in_key,
                            &out_key,
                        );
                        let _ = reply.send(result);
                    }
                }
            }
        });
        Orchestrator { store, registry, timers, tx, worker: Some(worker) }
    }

    /// The shared store.
    pub fn store(&self) -> &TensorStore {
        &self.store
    }

    /// Register a model bundle under a name (Listing 2's
    /// `set_model_from_file`). Load time is charged to the §7.3 breakdown.
    pub fn register_model(&self, name: &str, bundle: ModelBundle) {
        let t0 = Instant::now();
        self.registry.write().insert(name.to_string(), bundle);
        self.timers.lock().model_load += t0.elapsed();
    }

    /// Register from the serialized JSON form, charging deserialization to
    /// the model-load timer (the file-load path of Listing 2).
    pub fn register_model_from_json(&self, name: &str, json: &str) -> Result<()> {
        let t0 = Instant::now();
        let bundle = ModelBundle::from_json(json)?;
        self.registry.write().insert(name.to_string(), bundle);
        self.timers.lock().model_load += t0.elapsed();
        Ok(())
    }

    /// Listing 2's `set_model_from_file`: load a saved bundle from disk
    /// and register it. Load time is charged to the §7.3 breakdown.
    pub fn set_model_from_file(&self, name: &str, path: &std::path::Path) -> Result<()> {
        let t0 = Instant::now();
        let bundle = ModelBundle::load(path)?;
        self.registry.write().insert(name.to_string(), bundle);
        self.timers.lock().model_load += t0.elapsed();
        Ok(())
    }

    /// Is a model registered?
    pub fn has_model(&self, name: &str) -> bool {
        self.registry.read().contains_key(name)
    }

    /// Request channel used by [`crate::Client`].
    pub(crate) fn sender(&self) -> Sender<Request> {
        self.tx.clone()
    }

    /// Snapshot of the cumulative online-time breakdown.
    pub fn online_timers(&self) -> OnlineTimers {
        *self.timers.lock()
    }

    /// Synchronously execute an inference (also used by the worker).
    pub fn run_model_blocking(&self, model: &str, in_key: &str, out_key: &str) -> Result<()> {
        Self::execute(&self.store, &self.registry, &self.timers, model, in_key, out_key)
    }

    fn execute(
        store: &TensorStore,
        registry: &RwLock<HashMap<String, ModelBundle>>,
        timers: &Mutex<OnlineTimers>,
        model: &str,
        in_key: &str,
        out_key: &str,
    ) -> Result<()> {
        let t0 = Instant::now();
        let input = store.get(in_key)?;
        let fetch = t0.elapsed();

        // Hold the read guard for the inference instead of cloning the
        // bundle: weights can be megabytes and registrations are rare.
        let registry_guard = registry.read();
        let bundle = registry_guard
            .get(model)
            .ok_or_else(|| RuntimeError::MissingModel(model.to_string()))?;

        // Feature reduction: the sparse path never densifies the input
        // (paper §4.2's online API).
        let t1 = Instant::now();
        let reduced: Vec<f64> = match (&bundle.autoencoder, &input) {
            (Some(ae), TensorValue::Sparse(row)) => ae
                .encode_sparse(row)
                .map_err(|e| RuntimeError::Inference(e.to_string()))?
                .into_vec(),
            (Some(ae), TensorValue::Dense(v)) => {
                ae.encode(v).map_err(|e| RuntimeError::Inference(e.to_string()))?
            }
            (None, TensorValue::Sparse(row)) => row.to_dense_vector(),
            (None, TensorValue::Dense(v)) => v.clone(),
        };
        let encode = t1.elapsed();

        let t2 = Instant::now();
        let mut features = reduced;
        if let Some(scaler) = &bundle.scaler {
            scaler.transform_vec(&mut features);
        }
        let mut output = bundle
            .surrogate
            .predict(&features)
            .map_err(|e| RuntimeError::Inference(e.to_string()))?;
        if let Some(os) = &bundle.output_scaler {
            os.inverse_transform_vec(&mut output);
        }
        store.put_dense(out_key, output);
        let infer = t2.elapsed();

        let mut t = timers.lock();
        t.fetch += fetch;
        t.encode += encode;
        t.infer += infer;
        Ok(())
    }
}

impl Drop for Orchestrator {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

pub(crate) type ServerRequest = Request;

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_nn::{Mlp, Topology};
    use hpcnet_tensor::rng::seeded;

    fn tiny_bundle() -> ModelBundle {
        let mlp = Mlp::new(&Topology::mlp(vec![3, 4, 2]), &mut seeded(1, "srv")).unwrap();
        ModelBundle { surrogate: mlp.into(), autoencoder: None, scaler: None, output_scaler: None }
    }

    #[test]
    fn run_model_produces_output_tensor() {
        let orc = Orchestrator::launch(TensorStore::new());
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        orc.run_model_blocking("m", "in", "out").unwrap();
        let out = orc.store().get_dense("out").unwrap();
        assert_eq!(out.len(), 2);
        let timers = orc.online_timers();
        assert!(timers.fetch + timers.infer > Duration::ZERO);
    }

    #[test]
    fn missing_model_and_tensor_error() {
        let orc = Orchestrator::launch(TensorStore::new());
        assert!(matches!(
            orc.run_model_blocking("ghost", "in", "out"),
            Err(RuntimeError::MissingTensor(_)) | Err(RuntimeError::MissingModel(_))
        ));
        orc.store().put_dense("in", vec![1.0, 2.0, 3.0]);
        assert_eq!(
            orc.run_model_blocking("ghost", "in", "out"),
            Err(RuntimeError::MissingModel("ghost".into()))
        );
    }

    #[test]
    fn bundle_json_roundtrip_preserves_inference() {
        let bundle = tiny_bundle();
        let json = bundle.to_json();
        let orc = Orchestrator::launch(TensorStore::new());
        orc.register_model_from_json("m", &json).unwrap();
        orc.store().put_dense("in", vec![0.5, -0.5, 0.25]);
        orc.run_model_blocking("m", "in", "out").unwrap();
        let via_registry = orc.store().get_dense("out").unwrap();
        let direct = bundle.surrogate.predict(&[0.5, -0.5, 0.25]).unwrap();
        assert_eq!(via_registry, direct);
        assert!(orc.online_timers().model_load > Duration::ZERO);
    }

    #[test]
    fn sparse_input_with_autoencoder_never_densifies_width() {
        let mut rng = seeded(2, "srv-ae");
        let ae = Autoencoder::new(20, 4, &mut rng).unwrap();
        let mlp = Mlp::new(&Topology::mlp(vec![4, 6, 2]), &mut rng).unwrap();
        let bundle = ModelBundle { surrogate: mlp.into(), autoencoder: Some(ae), scaler: None, output_scaler: None };
        let orc = Orchestrator::launch(TensorStore::new());
        orc.register_model("sparse-m", bundle);
        let mut coo = hpcnet_tensor::Coo::new(1, 20);
        coo.push(0, 3, 1.0);
        coo.push(0, 17, -2.0);
        orc.store().put_sparse("in", coo.to_csr());
        orc.run_model_blocking("sparse-m", "in", "out").unwrap();
        assert_eq!(orc.store().get_dense("out").unwrap().len(), 2);
    }

    #[test]
    fn bundle_file_roundtrip_and_set_model_from_file() {
        let bundle = tiny_bundle();
        let dir = std::env::temp_dir().join("hpcnet-test-bundle");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("saved_net.json");
        bundle.save(&path).unwrap();
        let orc = Orchestrator::launch(TensorStore::new());
        orc.set_model_from_file("m", &path).unwrap();
        assert!(orc.has_model("m"));
        orc.store().put_dense("in", vec![0.3, 0.2, 0.1]);
        orc.run_model_blocking("m", "in", "out").unwrap();
        assert_eq!(
            orc.store().get_dense("out").unwrap(),
            bundle.surrogate.predict(&[0.3, 0.2, 0.1]).unwrap()
        );
        assert!(ModelBundle::load(&dir.join("missing.json")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn percentages_sum_to_hundred_when_nonzero() {
        let orc = Orchestrator::launch(TensorStore::new());
        orc.register_model("m", tiny_bundle());
        orc.store().put_dense("in", vec![0.1, 0.2, 0.3]);
        for _ in 0..5 {
            orc.run_model_blocking("m", "in", "out").unwrap();
        }
        let p = orc.online_timers().percentages();
        let sum: f64 = p.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6, "percentages sum {sum}");
    }
}
