//! Performance counters: a set-associative cache simulator and the
//! counter-report assembly for the paper's Table 3.

use serde::{Deserialize, Serialize};

/// A set-associative LRU cache simulator fed with byte addresses.
///
/// Used to estimate L2-level miss rates of the solver's memory stream vs
//  the surrogate's (Table 3's "L2 level cache-miss rate" row).
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: u64,
    sets: usize,
    ways: usize,
    /// `tags[set]` = lines in LRU order (front = most recent).
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Build a cache of `size_bytes` with `line_bytes` lines and `ways`
    /// associativity. Size must be divisible by `line_bytes * ways`.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        let lines = size_bytes / line_bytes;
        let sets = (lines as usize / ways).max(1);
        CacheSim {
            line_bytes,
            sets,
            ways,
            tags: vec![Vec::with_capacity(ways); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// A 1 MiB, 16-way, 64-byte-line cache — an L2-slice-scale default.
    pub fn l2_default() -> Self {
        CacheSim::new(1 << 20, 64, 16)
    }

    /// Access one byte address; returns whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line as usize) % self.sets;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            let tag = ways.remove(pos);
            ways.insert(0, tag);
            self.hits += 1;
            true
        } else {
            if ways.len() == self.ways {
                ways.pop();
            }
            ways.insert(0, line);
            self.misses += 1;
            false
        }
    }

    /// Feed a whole address stream.
    pub fn run(&mut self, addrs: &[u64]) {
        for &a in addrs {
            self.access(a);
        }
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            return 0.0;
        }
        self.misses as f64 / self.accesses() as f64
    }
}

/// One column of the Table 3 counter study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Configuration label ("CPU-only", "Original code on GPU", ...).
    pub label: String,
    /// Floating-point operations (counted exactly in the kernels).
    pub flops: u64,
    /// L2-level cache miss rate from the cache simulator.
    pub l2_miss_rate: f64,
    /// Memory bandwidth in MB/s (bytes moved / wall time).
    pub mem_bandwidth_mbs: f64,
    /// Wall-clock (or modeled, flagged by `modeled`) seconds.
    pub wall_seconds: f64,
    /// Whether the time is a device-model estimate rather than measured.
    pub modeled: bool,
}

impl PerfReport {
    /// Render one table row (FLOPs in G or M depending on magnitude).
    pub fn row(&self) -> String {
        let flops = if self.flops >= 1_000_000_000 {
            format!("{:.3}G", self.flops as f64 / 1e9)
        } else {
            format!("{:.3}M", self.flops as f64 / 1e6)
        };
        format!(
            "{:<24} {:>13} {:>10.2}% {:>12.1} {:>12.6}{}",
            self.label,
            flops,
            100.0 * self.l2_miss_rate,
            self.mem_bandwidth_mbs,
            self.wall_seconds,
            if self.modeled { " (modeled)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_mostly_hits_after_first_touch() {
        let mut sim = CacheSim::new(1 << 16, 64, 8);
        // Walk 4 KiB of memory 8 times.
        let mut addrs = Vec::new();
        for _ in 0..8 {
            for a in (0..4096u64).step_by(8) {
                addrs.push(a);
            }
        }
        sim.run(&addrs);
        // First pass misses 64 lines, the rest hit.
        assert!(sim.miss_rate() < 0.05, "miss rate {}", sim.miss_rate());
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut sim = CacheSim::new(1 << 12, 64, 2); // 4 KiB cache
        let mut addrs = Vec::new();
        for _ in 0..4 {
            for a in (0..(1u64 << 16)).step_by(64) {
                addrs.push(a);
            }
        }
        sim.run(&addrs);
        assert!(sim.miss_rate() > 0.9, "miss rate {}", sim.miss_rate());
    }

    #[test]
    fn repeated_single_line_hits_forever() {
        let mut sim = CacheSim::l2_default();
        for _ in 0..100 {
            sim.access(0x1234);
        }
        assert_eq!(sim.accesses(), 100);
        assert!((sim.miss_rate() - 0.01).abs() < 1e-12); // 1 cold miss
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way set: touch A, B, then C in the same set: A evicted.
        let mut sim = CacheSim::new(128, 64, 2); // 1 set, 2 ways
        assert!(!sim.access(0));
        assert!(!sim.access(64));
        assert!(!sim.access(128)); // evicts line 0
        assert!(!sim.access(0)); // miss again
        assert!(sim.access(128)); // still resident
    }

    #[test]
    fn report_row_formats() {
        let r = PerfReport {
            label: "CPU-only".into(),
            flops: 30_660_000_000,
            l2_miss_rate: 0.3747,
            mem_bandwidth_mbs: 3523.15,
            wall_seconds: 2.47,
            modeled: false,
        };
        let row = r.row();
        assert!(row.contains("CPU-only"));
        assert!(row.contains("30.660G"));
        assert!(row.contains("37.47%"));
    }
}
