//! Performance counters: a set-associative cache simulator, the
//! counter-report assembly for the paper's Table 3, and cumulative
//! statistics for the batched serving path.

use std::collections::HashMap;
use std::time::Duration;

use hpcnet_telemetry::RegistrySnapshot;
use serde::{Deserialize, Serialize};

use crate::metrics;

/// Serde helper (de)serializing a [`Duration`] as f64 seconds, so stats
/// JSON stays a flat, human-readable document instead of serde's default
/// `{secs, nanos}` pair. Use with `#[serde(with = "duration_secs")]`.
pub mod duration_secs {
    use std::time::Duration;

    use serde::{Deserialize, Deserializer, Serializer};

    /// Serialize a duration as fractional seconds.
    // hpcnet-lint: allow(result-error-type) -- signature fixed by serde's `with` module contract
    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(d.as_secs_f64())
    }

    /// Deserialize fractional seconds back into a duration.
    // hpcnet-lint: allow(result-error-type) -- signature fixed by serde's `with` module contract
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let secs = f64::deserialize(d)?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(serde::de::Error::custom(format!(
                "invalid duration: {secs} seconds"
            )));
        }
        Ok(Duration::from_secs_f64(secs))
    }
}

/// Buckets in the [`ServingStats`] batch-size histogram. Bucket `i` counts
/// batched forward passes whose size fell in `[2^i, 2^(i+1))`; the last
/// bucket is open-ended (≥ 1024).
pub const BATCH_HIST_BUCKETS: usize = 11;

/// Cumulative statistics for the orchestrator's batched serving path:
/// request volume per model, how well the coalescing loop is batching, and
/// end-to-end throughput over worker busy time.
///
/// Since the telemetry redesign this is a *view*: the orchestrator records
/// into its `hpcnet_telemetry::Registry` and assembles a `ServingStats`
/// on demand (see [`ServingStats::from_registry_snapshot`]). The
/// `record_*` mutators remain for standalone accumulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServingStats {
    /// Total requests executed — one per `(in_key, out_key)` pair, whether
    /// it arrived via `run_model` or `run_model_batch`.
    pub requests: u64,
    /// Requests that completed with an error.
    pub errors: u64,
    /// Batched forward passes executed (one per coalesced model group).
    pub batches: u64,
    /// Power-of-two batch-size histogram (see [`BATCH_HIST_BUCKETS`]).
    pub batch_hist: [u64; BATCH_HIST_BUCKETS],
    /// Requests served per model name.
    pub per_model: HashMap<String, u64>,
    /// Wall time workers spent executing groups (fetch + encode + infer).
    /// Serialized as f64 seconds.
    #[serde(with = "duration_secs")]
    pub busy: Duration,
    /// Requests rejected at enqueue because the bounded admission queue
    /// was full (never executed, not counted in `requests`).
    pub overload_rejected: u64,
    /// Admitted requests whose deadline passed before execution; answered
    /// with `DeadlineExceeded` (not counted in `requests`).
    pub deadline_expired: u64,
    /// Guarded requests whose surrogate output passed the validator.
    pub quality_hits: u64,
    /// Guarded requests the validator rejected and the registered
    /// fallback (the original region) answered instead.
    pub quality_fallbacks: u64,
    /// Guarded requests the validator rejected with no fallback
    /// registered; the client saw `QualityRejected`.
    pub quality_rejected: u64,
    /// Requests whose stored answer came from the opt-in `f32` kernel
    /// path (`serve_f32(true)`, DESIGN.md §14). Defaults on
    /// deserialization so pre-f32 stats JSON still parses.
    #[serde(default)]
    pub f32_served: u64,
    /// Guarded `f32` outputs the validator rejected and the `f64`
    /// surrogate recomputed per request (precision demotion; counted
    /// separately from `quality_fallbacks`, which means the original
    /// region answered).
    #[serde(default)]
    pub f32_fallbacks: u64,
    /// Currently served version per model (from the
    /// `hpcnet_model_version` gauge). Starts at 1 on registration and
    /// rises on every accepted hot-swap; a probation rollback restores
    /// the prior value. Defaults on deserialization so stats JSON from
    /// servers predating online retraining still parses.
    #[serde(default)]
    pub model_versions: HashMap<String, u64>,
    /// Guard-fallback training samples captured into the online replay
    /// buffer. Defaults on deserialization (see `model_versions`).
    #[serde(default)]
    pub retrain_samples: u64,
    /// Background fine-tune runs executed.
    #[serde(default)]
    pub retrain_runs: u64,
    /// Fine-tuned candidates atomically hot-swapped into serving.
    #[serde(default)]
    pub retrain_swaps: u64,
    /// Hot-swapped candidates rolled back after a probation regression.
    #[serde(default)]
    pub retrain_rollbacks: u64,
    /// Fine-tuned candidates rejected by held-out validation.
    #[serde(default)]
    pub retrain_rejected: u64,
}

impl ServingStats {
    /// Assemble the cumulative-stats view from a telemetry registry
    /// snapshot: counter totals map 1:1, `per_model` comes from the
    /// `model`-labeled request counters, the batch-size histogram folds
    /// back into power-of-two buckets (telemetry sub-buckets never
    /// straddle an octave), and `busy` is the busy histogram's sum.
    pub fn from_registry_snapshot(snap: &RegistrySnapshot) -> Self {
        let mut s = ServingStats {
            requests: snap.counter_total(metrics::REQUESTS_TOTAL),
            errors: snap.counter_total(metrics::ERRORS_TOTAL),
            batches: snap.counter_total(metrics::BATCHES_TOTAL),
            overload_rejected: snap.counter_total(metrics::OVERLOAD_REJECTED_TOTAL),
            deadline_expired: snap.counter_total(metrics::DEADLINE_EXPIRED_TOTAL),
            quality_hits: snap.counter_total(metrics::QUALITY_HITS_TOTAL),
            quality_fallbacks: snap.counter_total(metrics::QUALITY_FALLBACKS_TOTAL),
            quality_rejected: snap.counter_total(metrics::QUALITY_REJECTED_TOTAL),
            f32_served: snap.counter_total(metrics::F32_SERVED_TOTAL),
            f32_fallbacks: snap.counter_total(metrics::F32_FALLBACKS_TOTAL),
            retrain_samples: snap.counter_total(metrics::RETRAIN_SAMPLES_TOTAL),
            retrain_runs: snap.counter_total(metrics::RETRAIN_RUNS_TOTAL),
            retrain_swaps: snap.counter_total(metrics::RETRAIN_SWAPS_TOTAL),
            retrain_rollbacks: snap.counter_total(metrics::RETRAIN_ROLLBACKS_TOTAL),
            retrain_rejected: snap.counter_total(metrics::RETRAIN_REJECTED_TOTAL),
            ..ServingStats::default()
        };
        for c in &snap.counters {
            if c.name != metrics::REQUESTS_TOTAL {
                continue;
            }
            if let Some((_, model)) = c.labels.iter().find(|(k, _)| k == "model") {
                *s.per_model.entry(model.clone()).or_insert(0) += c.value;
            }
        }
        for g in &snap.gauges {
            if g.name != metrics::MODEL_VERSION {
                continue;
            }
            if let Some((_, model)) = g.labels.iter().find(|(k, _)| k == "model") {
                s.model_versions.insert(model.clone(), g.value as u64);
            }
        }
        if let Some(h) = snap.find_histogram(metrics::BATCH_SIZE, &[]) {
            for b in &h.buckets {
                let i = if b.lo < 2 {
                    0
                } else {
                    (63 - b.lo.leading_zeros()) as usize
                };
                s.batch_hist[i.min(BATCH_HIST_BUCKETS - 1)] += b.count;
            }
        }
        if let Some(h) = snap.find_histogram(metrics::BUSY_SECONDS, &[]) {
            s.busy = Duration::from_nanos(h.sum);
        }
        s
    }

    /// Charge one executed model group of `size` requests, `errors` of
    /// which failed, that kept a worker busy for `busy`.
    pub fn record_group(&mut self, model: &str, size: usize, errors: usize, busy: Duration) {
        self.requests += size as u64;
        self.errors += errors as u64;
        self.batches += 1;
        let bucket = if size == 0 {
            0
        } else {
            (usize::BITS - 1 - size.leading_zeros()) as usize
        };
        self.batch_hist[bucket.min(BATCH_HIST_BUCKETS - 1)] += 1;
        *self.per_model.entry(model.to_string()).or_insert(0) += size as u64;
        self.busy += busy;
    }

    /// Fold another server's cumulative stats into this one — the
    /// cluster-wide rollup (`hpcnet-cluster` merges one snapshot per
    /// endpoint into a fleet view). Counts and busy time add; the
    /// per-model and batch-size breakdowns merge bucket-wise.
    pub fn merge(&mut self, other: &ServingStats) {
        self.requests += other.requests;
        self.errors += other.errors;
        self.batches += other.batches;
        for (mine, theirs) in self.batch_hist.iter_mut().zip(&other.batch_hist) {
            *mine += theirs;
        }
        for (model, n) in &other.per_model {
            *self.per_model.entry(model.clone()).or_insert(0) += n;
        }
        self.busy += other.busy;
        self.overload_rejected += other.overload_rejected;
        self.deadline_expired += other.deadline_expired;
        self.quality_hits += other.quality_hits;
        self.quality_fallbacks += other.quality_fallbacks;
        self.quality_rejected += other.quality_rejected;
        self.f32_served += other.f32_served;
        self.f32_fallbacks += other.f32_fallbacks;
        // Versions are levels, not counts: a fleet rollup reports the
        // highest version any endpoint serves, exposing version skew
        // against each endpoint's own `serving_stats()`.
        for (model, v) in &other.model_versions {
            let e = self.model_versions.entry(model.clone()).or_insert(0);
            *e = (*e).max(*v);
        }
        self.retrain_samples += other.retrain_samples;
        self.retrain_runs += other.retrain_runs;
        self.retrain_swaps += other.retrain_swaps;
        self.retrain_rollbacks += other.retrain_rollbacks;
        self.retrain_rejected += other.retrain_rejected;
    }

    /// Charge one admission rejection (bounded queue full).
    pub fn record_overload_rejection(&mut self) {
        self.overload_rejected += 1;
    }

    /// Charge `n` requests expired in the queue before execution.
    pub fn record_deadline_expired(&mut self, n: u64) {
        self.deadline_expired += n;
    }

    /// Charge quality-guard outcomes for one executed group.
    pub fn record_quality(&mut self, hits: u64, fallbacks: u64, rejected: u64) {
        self.quality_hits += hits;
        self.quality_fallbacks += fallbacks;
        self.quality_rejected += rejected;
    }

    /// Charge reduced-precision outcomes for one executed group.
    pub fn record_f32(&mut self, served: u64, fallbacks: u64) {
        self.f32_served += served;
        self.f32_fallbacks += fallbacks;
    }

    /// Fraction of guarded requests answered by the surrogate (the
    /// serving-side analog of `GuardStats::surrogate_rate`).
    pub fn quality_hit_rate(&self) -> f64 {
        let total = self.quality_hits + self.quality_fallbacks + self.quality_rejected;
        if total == 0 {
            return 0.0;
        }
        self.quality_hits as f64 / total as f64
    }

    /// Mean requests per batched forward pass.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.requests as f64 / self.batches as f64
    }

    /// Requests per second of worker busy time. With concurrent workers
    /// this can understate wall-clock throughput (busy time is summed
    /// across workers), so treat it as a conservative floor.
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// Render the non-empty histogram buckets as `(label, count)` rows,
    /// e.g. `("8-15", 3)`.
    pub fn histogram(&self) -> Vec<(String, u64)> {
        self.batch_hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = 1u64 << i;
                let label = if i == BATCH_HIST_BUCKETS - 1 {
                    format!("{lo}+")
                } else {
                    format!("{}-{}", lo, (1u64 << (i + 1)) - 1)
                };
                (label, c)
            })
            .collect()
    }
}

/// A set-associative LRU cache simulator fed with byte addresses.
///
/// Used to estimate L2-level miss rates of the solver's memory stream vs
/// the surrogate's (Table 3's "L2 level cache-miss rate" row).
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: u64,
    sets: usize,
    ways: usize,
    /// `tags[set]` = lines in LRU order (front = most recent).
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Build a cache of `size_bytes` with `line_bytes` lines and `ways`
    /// associativity. Size must be divisible by `line_bytes * ways`.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = size_bytes / line_bytes;
        let sets = (lines as usize / ways).max(1);
        CacheSim {
            line_bytes,
            sets,
            ways,
            tags: vec![Vec::with_capacity(ways); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// A 1 MiB, 16-way, 64-byte-line cache — an L2-slice-scale default.
    pub fn l2_default() -> Self {
        CacheSim::new(1 << 20, 64, 16)
    }

    /// Access one byte address; returns whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line as usize) % self.sets;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            let tag = ways.remove(pos);
            ways.insert(0, tag);
            self.hits += 1;
            true
        } else {
            if ways.len() == self.ways {
                ways.pop();
            }
            ways.insert(0, line);
            self.misses += 1;
            false
        }
    }

    /// Feed a whole address stream.
    pub fn run(&mut self, addrs: &[u64]) {
        for &a in addrs {
            self.access(a);
        }
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            return 0.0;
        }
        self.misses as f64 / self.accesses() as f64
    }
}

/// One column of the Table 3 counter study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Configuration label ("CPU-only", "Original code on GPU", ...).
    pub label: String,
    /// Floating-point operations (counted exactly in the kernels).
    pub flops: u64,
    /// L2-level cache miss rate from the cache simulator.
    pub l2_miss_rate: f64,
    /// Memory bandwidth in MB/s (bytes moved / wall time).
    pub mem_bandwidth_mbs: f64,
    /// Wall-clock (or modeled, flagged by `modeled`) seconds.
    pub wall_seconds: f64,
    /// Whether the time is a device-model estimate rather than measured.
    pub modeled: bool,
}

impl PerfReport {
    /// Render one table row (FLOPs in G or M depending on magnitude).
    pub fn row(&self) -> String {
        let flops = if self.flops >= 1_000_000_000 {
            format!("{:.3}G", self.flops as f64 / 1e9)
        } else {
            format!("{:.3}M", self.flops as f64 / 1e6)
        };
        format!(
            "{:<24} {:>13} {:>10.2}% {:>12.1} {:>12.6}{}",
            self.label,
            flops,
            100.0 * self.l2_miss_rate,
            self.mem_bandwidth_mbs,
            self.wall_seconds,
            if self.modeled { " (modeled)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_folds_counts_histograms_and_models() {
        let mut a = ServingStats::default();
        a.record_group("mlp", 4, 1, Duration::from_millis(10));
        let mut b = ServingStats::default();
        b.record_group("mlp", 4, 0, Duration::from_millis(30));
        b.record_group("cnn", 1, 0, Duration::from_millis(5));
        b.record_overload_rejection();
        b.record_deadline_expired(2);
        b.record_quality(3, 1, 1);
        b.record_f32(2, 1);

        a.merge(&b);
        assert_eq!(a.requests, 9);
        assert_eq!(a.errors, 1);
        assert_eq!(a.batches, 3);
        assert_eq!(a.busy, Duration::from_millis(45));
        assert_eq!(a.overload_rejected, 1);
        assert_eq!(a.deadline_expired, 2);
        assert_eq!(
            (a.quality_hits, a.quality_fallbacks, a.quality_rejected),
            (3, 1, 1)
        );
        assert_eq!((a.f32_served, a.f32_fallbacks), (2, 1));
        assert_eq!(a.per_model["mlp"], 8);
        assert_eq!(a.per_model["cnn"], 1);
        // Batch-size buckets add element-wise: two size-4 groups land in
        // one bucket, the size-1 group in another.
        assert_eq!(a.batch_hist.iter().sum::<u64>(), 3);
        // Merging an empty snapshot is the identity.
        let before = a.clone();
        a.merge(&ServingStats::default());
        assert_eq!(a.requests, before.requests);
        assert_eq!(a.batch_hist, before.batch_hist);
        assert_eq!(a.per_model, before.per_model);
    }

    #[test]
    fn sequential_stream_mostly_hits_after_first_touch() {
        let mut sim = CacheSim::new(1 << 16, 64, 8);
        // Walk 4 KiB of memory 8 times.
        let mut addrs = Vec::new();
        for _ in 0..8 {
            for a in (0..4096u64).step_by(8) {
                addrs.push(a);
            }
        }
        sim.run(&addrs);
        // First pass misses 64 lines, the rest hit.
        assert!(sim.miss_rate() < 0.05, "miss rate {}", sim.miss_rate());
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut sim = CacheSim::new(1 << 12, 64, 2); // 4 KiB cache
        let mut addrs = Vec::new();
        for _ in 0..4 {
            for a in (0..(1u64 << 16)).step_by(64) {
                addrs.push(a);
            }
        }
        sim.run(&addrs);
        assert!(sim.miss_rate() > 0.9, "miss rate {}", sim.miss_rate());
    }

    #[test]
    fn repeated_single_line_hits_forever() {
        let mut sim = CacheSim::l2_default();
        for _ in 0..100 {
            sim.access(0x1234);
        }
        assert_eq!(sim.accesses(), 100);
        assert!((sim.miss_rate() - 0.01).abs() < 1e-12); // 1 cold miss
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way set: touch A, B, then C in the same set: A evicted.
        let mut sim = CacheSim::new(128, 64, 2); // 1 set, 2 ways
        assert!(!sim.access(0));
        assert!(!sim.access(64));
        assert!(!sim.access(128)); // evicts line 0
        assert!(!sim.access(0)); // miss again
        assert!(sim.access(128)); // still resident
    }

    #[test]
    fn serving_stats_buckets_and_rates() {
        let mut s = ServingStats::default();
        s.record_group("m", 1, 0, Duration::from_millis(10));
        s.record_group("m", 7, 1, Duration::from_millis(10));
        s.record_group("n", 8, 0, Duration::from_millis(30));
        assert_eq!(s.requests, 16);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 3);
        assert_eq!(s.batch_hist[0], 1); // size 1
        assert_eq!(s.batch_hist[2], 1); // size 7 -> [4, 8)
        assert_eq!(s.batch_hist[3], 1); // size 8 -> [8, 16)
        assert_eq!(s.per_model["m"], 8);
        assert_eq!(s.per_model["n"], 8);
        assert!((s.mean_batch_size() - 16.0 / 3.0).abs() < 1e-12);
        assert!((s.requests_per_sec() - 16.0 / 0.05).abs() < 1e-6);
        let hist = s.histogram();
        assert_eq!(
            hist,
            vec![
                ("1-1".to_string(), 1),
                ("4-7".to_string(), 1),
                ("8-15".to_string(), 1)
            ]
        );
    }

    #[test]
    fn serving_stats_huge_batch_lands_in_open_bucket() {
        let mut s = ServingStats::default();
        s.record_group("m", 5000, 0, Duration::ZERO);
        assert_eq!(s.batch_hist[BATCH_HIST_BUCKETS - 1], 1);
        assert_eq!(s.histogram(), vec![("1024+".to_string(), 1)]);
        assert_eq!(s.requests_per_sec(), 0.0); // no busy time recorded
        let empty = ServingStats::default();
        assert_eq!(empty.mean_batch_size(), 0.0);
    }

    #[test]
    fn serving_stats_quality_and_admission_counters() {
        let mut s = ServingStats::default();
        assert_eq!(s.quality_hit_rate(), 0.0);
        s.record_overload_rejection();
        s.record_overload_rejection();
        s.record_deadline_expired(3);
        s.record_quality(6, 2, 0);
        assert_eq!(s.overload_rejected, 2);
        assert_eq!(s.deadline_expired, 3);
        assert_eq!(s.quality_hits, 6);
        assert_eq!(s.quality_fallbacks, 2);
        assert_eq!(s.quality_rejected, 0);
        assert!((s.quality_hit_rate() - 0.75).abs() < 1e-12);
        // Admission/deadline counters never contaminate execution counts.
        assert_eq!(s.requests, 0);
        assert_eq!(s.errors, 0);
    }

    #[test]
    fn serving_stats_serde_roundtrips_busy_as_seconds() {
        let mut s = ServingStats::default();
        s.record_group("m", 4, 1, Duration::from_millis(250));
        s.record_quality(3, 1, 0);
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            json.contains("\"busy\":0.25"),
            "busy not in seconds: {json}"
        );
        let back: ServingStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.requests, 4);
        assert_eq!(back.errors, 1);
        assert_eq!(back.busy, Duration::from_millis(250));
        assert_eq!(back.batch_hist, s.batch_hist);
        assert_eq!(back.per_model["m"], 4);
        assert_eq!(back.quality_hits, 3);
        // A negative duration must fail to deserialize, not panic.
        assert!(serde_json::from_str::<ServingStats>(&json.replace("0.25", "-1.0")).is_err());
    }

    #[test]
    fn serving_stats_f32_counters_roundtrip_and_default() {
        let mut s = ServingStats::default();
        s.record_f32(5, 2);
        let json = serde_json::to_string(&s).unwrap();
        let back: ServingStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.f32_served, 5);
        assert_eq!(back.f32_fallbacks, 2);
        // Wire compatibility: stats JSON emitted before the f32 path
        // existed (no f32 fields) still deserializes, reading zero.
        let legacy = json
            .replace("\"f32_served\":5,", "")
            .replace("\"f32_fallbacks\":2,", "")
            .replace(",\"f32_served\":5", "")
            .replace(",\"f32_fallbacks\":2", "");
        let old: ServingStats = serde_json::from_str(&legacy).unwrap();
        assert_eq!(old.f32_served, 0);
        assert_eq!(old.f32_fallbacks, 0);
    }

    #[test]
    fn serving_stats_retrain_fields_roundtrip_default_and_merge() {
        let mut s = ServingStats::default();
        s.model_versions.insert("m".to_string(), 3);
        s.retrain_samples = 40;
        s.retrain_runs = 2;
        s.retrain_swaps = 1;
        s.retrain_rollbacks = 1;
        s.retrain_rejected = 1;
        let json = serde_json::to_string(&s).unwrap();
        let back: ServingStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.model_versions["m"], 3);
        assert_eq!(back.retrain_swaps, 1);
        // Wire compatibility: stats JSON emitted before online retraining
        // existed carries none of these fields and must still parse.
        let legacy = serde_json::to_string(&ServingStats::default()).unwrap();
        let legacy = legacy
            .replace("\"model_versions\":{},", "")
            .replace("\"retrain_samples\":0,", "")
            .replace("\"retrain_runs\":0,", "")
            .replace("\"retrain_swaps\":0,", "")
            .replace("\"retrain_rollbacks\":0,", "")
            .replace(",\"retrain_rejected\":0", "");
        assert!(!legacy.contains("retrain"), "strip failed: {legacy}");
        let old: ServingStats = serde_json::from_str(&legacy).unwrap();
        assert!(old.model_versions.is_empty());
        assert_eq!(old.retrain_swaps, 0);
        // Merge: counters add, versions take the per-model max (fleet
        // rollup reports the newest version any endpoint serves).
        let mut other = ServingStats::default();
        other.model_versions.insert("m".to_string(), 2);
        other.model_versions.insert("n".to_string(), 5);
        other.retrain_swaps = 2;
        s.merge(&other);
        assert_eq!(s.model_versions["m"], 3);
        assert_eq!(s.model_versions["n"], 5);
        assert_eq!(s.retrain_swaps, 3);
    }

    #[test]
    fn report_row_formats() {
        let r = PerfReport {
            label: "CPU-only".into(),
            flops: 30_660_000_000,
            l2_miss_rate: 0.3747,
            mem_bandwidth_mbs: 3523.15,
            wall_seconds: 2.47,
            modeled: false,
        };
        let row = r.row();
        assert!(row.contains("CPU-only"));
        assert!(row.contains("30.660G"));
        assert!(row.contains("37.47%"));
    }
}
