//! The shared [`ClientApi`] conformance suite.
//!
//! Every transport that implements [`ClientApi`] — the in-process
//! [`crate::Client`], `hpcnet-net`'s `RemoteClient`, `hpcnet-cluster`'s
//! `ClusterClient` — must behave identically at the call site. This
//! module pins that contract executably: each crate's tests stand up
//! their transport and hand it to [`Conformance::check`], so a behavioral
//! divergence (a batch that aborts on first error, a zero deadline that
//! races instead of failing typed, an output that is not bit-identical)
//! fails the same named assertion everywhere.
//!
//! What the core suite pins (see the [`ClientApi`] docs for the
//! contract's rationale):
//!
//! * single-request `put_tensor` → `run_model` → `unpack_tensor`
//!   round-trips bit-identically to a caller-supplied reference function;
//! * `run_model_batch` serves every pair bit-identically to the
//!   single-request path;
//! * an empty batch is `Ok(())`, even with an expired deadline;
//! * a failing pair does not abort the rest: the first error in pair
//!   order comes back **and** every healthy pair stores its output;
//! * a zero deadline fails typed ([`RuntimeError::DeadlineExceeded`])
//!   before any server work, for both single requests and batches;
//! * unknown models fail typed ([`RuntimeError::MissingModel`]);
//! * `del_tensor` reports prior existence and deletion is visible;
//! * `ping` succeeds, `serving_stats` counts the suite's requests, and
//!   `metrics_text` exposes `hpcnet_`-prefixed series;
//! * `trace_dump` exposes the same per-request view everywhere
//!   (DESIGN.md §16): a failed request's trace is always retained by
//!   the flight recorder, carries a root span, and carries the serving
//!   stage children (`queue_wait`/`fetch`/`encode`/`infer`).
//!
//! [`check_overload`] is separate because it needs a deliberately
//! saturated server (one worker, queue depth 1, a stalling model):
//! it pins that admission rejection arrives as the *typed*
//! [`RuntimeError::Overloaded`] with the server's queue depth, not as a
//! transport failure or a hang.

// Test-support module: the suite's whole job is to panic on contract
// violations, so the expect/panic restrictions for serving code do not
// apply here.
#![allow(clippy::expect_used, clippy::panic)]

use std::time::Duration;

use hpcnet_telemetry::trace::{stage_names, tags};
use hpcnet_telemetry::SpanStatus;

use crate::{ClientApi, Result, RuntimeError};

/// Unwrap a suite step, panicking with the step's name on failure so the
/// failing transport and operation are visible in the test output.
/// (Test-support code: panics here are assertion failures, not serving
/// errors.)
fn pass<T>(what: &str, r: Result<T>) -> T {
    match r {
        Ok(v) => v,
        // hpcnet-lint: allow(no-panic) -- conformance failures are test assertions
        Err(e) => panic!("conformance: {what}: {e}"),
    }
}

/// A conformance run: the model to drive and the ground truth to compare
/// against.
///
/// The reference function must be the same deterministic pipeline the
/// serving side executes (scaler → autoencoder → surrogate →
/// output-scaler) so outputs can be compared **bit-exactly** — every
/// transport serves the identical f64s.
pub struct Conformance<'a> {
    model: &'a str,
    input_dim: usize,
    reference: &'a dyn Fn(&[f64]) -> Vec<f64>,
    prefix: String,
}

impl<'a> Conformance<'a> {
    /// Configure a run for `model`, feeding `input_dim`-wide inputs and
    /// checking outputs against `reference`.
    pub fn new(
        model: &'a str,
        input_dim: usize,
        reference: &'a dyn Fn(&[f64]) -> Vec<f64>,
    ) -> Self {
        Conformance {
            model,
            input_dim,
            reference,
            prefix: "conf".to_string(),
        }
    }

    /// Prefix for every tensor key the suite creates (default `conf`).
    /// Give each transport under test in one process a distinct prefix.
    pub fn key_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.prefix = prefix.into();
        self
    }

    /// A deterministic input: `input_dim` values derived from `sample`.
    fn input(&self, sample: u64) -> Vec<f64> {
        (0..self.input_dim)
            .map(|i| ((sample as f64) * 0.37 + (i as f64) * 0.11).sin())
            .collect()
    }

    fn key(&self, name: &str) -> String {
        format!("{}/{name}", self.prefix)
    }

    /// Run the full core suite against `client`. Panics (with the failing
    /// step named) on any contract violation.
    pub fn check(&self, client: &dyn ClientApi) {
        self.check_liveness(client);
        self.check_single_round_trip(client);
        self.check_batch_bit_exact(client);
        self.check_batch_error_semantics(client);
        self.check_deadline_semantics(client);
        self.check_observability(client);
        self.check_model_versions(client);
        self.check_tracing(client);
    }

    fn check_liveness(&self, client: &dyn ClientApi) {
        pass(
            "ping must succeed against a serving endpoint",
            client.ping(),
        );
    }

    fn check_single_round_trip(&self, client: &dyn ClientApi) {
        let x = self.input(1);
        let in_key = self.key("single-in");
        let out_key = self.key("single-out");
        pass("put_tensor", client.put_tensor(&in_key, &x));
        pass("run_model", client.run_model(self.model, &in_key, &out_key));
        let y = pass(
            "unpack_tensor of a served output",
            client.unpack_tensor(&out_key),
        );
        assert_bits_eq(&y, &(self.reference)(&x), "single-request output");

        // Unknown models fail typed, regardless of transport.
        let err = client
            .run_model("no-such-model", &in_key, &self.key("ghost-out"))
            .expect_err("conformance: unknown model must fail");
        assert!(
            matches!(err, RuntimeError::MissingModel(_)),
            "conformance: unknown model must be typed MissingModel, got {err:?}"
        );

        // Deletion reports prior existence and is visible.
        assert!(
            pass("del_tensor of an existing key", client.del_tensor(&out_key)),
            "conformance: first delete must report the key existed"
        );
        assert!(
            !pass("del_tensor of a deleted key", client.del_tensor(&out_key)),
            "conformance: second delete must report the key gone"
        );
        let err = client
            .unpack_tensor(&out_key)
            .expect_err("conformance: deleted key must not unpack");
        assert!(
            matches!(err, RuntimeError::MissingTensor(_)),
            "conformance: deleted key must be typed MissingTensor, got {err:?}"
        );
    }

    fn check_batch_bit_exact(&self, client: &dyn ClientApi) {
        const BATCH: u64 = 5;
        let inputs: Vec<Vec<f64>> = (0..BATCH).map(|s| self.input(100 + s)).collect();
        let keys: Vec<(String, String)> = (0..BATCH)
            .map(|s| {
                (
                    self.key(&format!("b{s}-in")),
                    self.key(&format!("b{s}-out")),
                )
            })
            .collect();
        for (x, (in_key, _)) in inputs.iter().zip(&keys) {
            pass("batch put_tensor", client.put_tensor(in_key, x));
        }
        let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
        pass(
            "run_model_batch",
            client.run_model_batch(self.model, &pairs),
        );
        for (s, (x, (_, out_key))) in inputs.iter().zip(&keys).enumerate() {
            let y = pass(
                "unpack_tensor of a batch output",
                client.unpack_tensor(out_key),
            );
            assert_bits_eq(&y, &(self.reference)(x), &format!("batch pair {s} output"));
        }

        // Empty batches are served locally, even with an expired budget.
        pass("empty batch", client.run_model_batch(self.model, &[]));
        pass(
            "empty batch with zero deadline",
            client.run_model_batch_with_deadline(self.model, &[], Duration::ZERO),
        );
    }

    fn check_batch_error_semantics(&self, client: &dyn ClientApi) {
        let ok1_in = self.key("err-ok1-in");
        let ok2_in = self.key("err-ok2-in");
        let missing_in = self.key("err-missing-in");
        pass("put_tensor", client.put_tensor(&ok1_in, &self.input(200)));
        pass("put_tensor", client.put_tensor(&ok2_in, &self.input(201)));
        let ok1_out = self.key("err-ok1-out");
        let ok2_out = self.key("err-ok2-out");
        let pairs: Vec<(&str, &str)> = vec![
            (ok1_in.as_str(), ok1_out.as_str()),
            (missing_in.as_str(), "err-missing-out"),
            (ok2_in.as_str(), ok2_out.as_str()),
        ];
        let err = client
            .run_model_batch(self.model, &pairs)
            .expect_err("conformance: a batch with a missing input must fail");
        assert!(
            matches!(&err, RuntimeError::MissingTensor(k) if k.contains("err-missing-in")),
            "conformance: first error in pair order must be the missing input, got {err:?}"
        );
        // ...but the healthy pairs around it were still served.
        for (x_sample, out_key) in [(200, &ok1_out), (201, &ok2_out)] {
            let y = pass(
                "unpack_tensor of a pair served despite a failing sibling",
                client.unpack_tensor(out_key),
            );
            assert_bits_eq(
                &y,
                &(self.reference)(&self.input(x_sample)),
                "served-despite-error output",
            );
        }
    }

    fn check_deadline_semantics(&self, client: &dyn ClientApi) {
        let in_key = self.key("dl-in");
        pass("put_tensor", client.put_tensor(&in_key, &self.input(300)));

        // A zero budget fails typed before any server work, single and
        // batched alike — on every transport.
        let err = client
            .run_model_with_deadline(self.model, &in_key, &self.key("dl-out"), Duration::ZERO)
            .expect_err("conformance: zero deadline must fail");
        assert_eq!(
            err,
            RuntimeError::DeadlineExceeded,
            "conformance: zero single-request deadline must be typed DeadlineExceeded"
        );
        let pairs: Vec<(&str, &str)> = vec![(in_key.as_str(), "dl-batch-out")];
        let err = client
            .run_model_batch_with_deadline(self.model, &pairs, Duration::ZERO)
            .expect_err("conformance: zero batch deadline must fail");
        assert_eq!(
            err,
            RuntimeError::DeadlineExceeded,
            "conformance: zero batch deadline must be typed DeadlineExceeded"
        );

        // A generous budget serves bit-identically to the undeadlined path.
        let out_key = self.key("dl-served-out");
        pass(
            "run_model_with_deadline under a generous budget",
            client.run_model_with_deadline(self.model, &in_key, &out_key, Duration::from_secs(30)),
        );
        let y = pass(
            "unpack_tensor of a deadlined output",
            client.unpack_tensor(&out_key),
        );
        assert_bits_eq(&y, &(self.reference)(&self.input(300)), "deadlined output");
    }

    fn check_observability(&self, client: &dyn ClientApi) {
        let stats = pass("serving_stats", client.serving_stats());
        assert!(
            stats.requests > 0,
            "conformance: serving_stats must count the suite's requests, saw {}",
            stats.requests
        );
        let text = pass("metrics_text", client.metrics_text());
        assert!(
            text.contains("hpcnet_"),
            "conformance: metrics_text must expose hpcnet_-prefixed series, got:\n{text}"
        );
    }

    /// `model_versions` is pinned identical across transports (DESIGN.md
    /// §17): the model under test is listed with a version of at least 1,
    /// and the map agrees with the gauge-derived
    /// [`ServingStats::model_versions`](crate::ServingStats) view —
    /// whether the transport uses the default derivation or overrides it.
    /// (A v1-protocol remote degrades to an empty map; that path is
    /// pinned by the protocol-downgrade tests, not the core suite, which
    /// always runs against a current server.)
    fn check_model_versions(&self, client: &dyn ClientApi) {
        let versions = pass("model_versions", client.model_versions());
        let v = versions.get(self.model).copied().unwrap_or_else(|| {
            // hpcnet-lint: allow(no-panic) -- conformance failures are test assertions
            panic!(
                "conformance: model_versions must list `{}`, got {versions:?}",
                self.model
            )
        });
        assert!(
            v >= 1,
            "conformance: served versions start at 1, got {v} for `{}`",
            self.model
        );
        let stats = pass("serving_stats", client.serving_stats());
        assert_eq!(
            stats.model_versions.get(self.model).copied(),
            Some(v),
            "conformance: model_versions and serving_stats.model_versions must agree"
        );
    }

    /// `trace_dump` is pinned identical across transports (DESIGN.md
    /// §16): a failed request is *always* retained by tail sampling, its
    /// trace has a root span, and the serving stages appear as child
    /// spans. Driven by a deliberately missing input tensor so the check
    /// does not depend on the recorder's one-in-N sampling of healthy
    /// requests.
    fn check_tracing(&self, client: &dyn ClientApi) {
        let in_key = self.key("trace-missing-in"); // never stored
        let err = client
            .run_model(self.model, &in_key, &self.key("trace-missing-out"))
            .expect_err("conformance: a missing input must fail");
        assert!(
            matches!(err, RuntimeError::MissingTensor(_)),
            "conformance: missing input must be typed MissingTensor, got {err:?}"
        );
        let traces = pass("trace_dump", client.trace_dump());
        assert!(
            !traces.is_empty(),
            "conformance: trace_dump must retain the failed request's trace"
        );
        let t = traces
            .iter()
            .rev()
            .find(|t| {
                t.spans.iter().any(
                    |s| matches!(&s.status, SpanStatus::Error(m) if m.contains("trace-missing-in")),
                )
            })
            .unwrap_or_else(|| {
                // hpcnet-lint: allow(no-panic) -- conformance failures are test assertions
                panic!("conformance: the failed request's trace must be retained with its error")
            });
        assert!(
            t.has_tag(tags::ERROR),
            "conformance: the failed request's trace must carry the error retention tag, got {:?}",
            t.tags
        );
        let root = t.root().unwrap_or_else(|| {
            // hpcnet-lint: allow(no-panic) -- conformance failures are test assertions
            panic!("conformance: a retained trace must have a root span")
        });
        assert!(
            root.parent.is_none(),
            "conformance: the root span must have no parent"
        );
        for stage in [
            stage_names::QUEUE_WAIT,
            stage_names::FETCH,
            stage_names::ENCODE,
            stage_names::INFER,
        ] {
            assert!(
                t.span_named(stage).is_some(),
                "conformance: stage child span `{stage}` missing from the trace; spans: {:?}",
                t.spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
            );
        }
    }
}

/// Assert two served tensors are bit-identical (the runtime's contract:
/// every transport returns the exact f64s the model produced).
fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(
        got.len(),
        want.len(),
        "conformance: {what}: length {} != {}",
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "conformance: {what}: element {i} diverged ({g} != {w})"
        );
    }
}

/// Pin typed admission rejection against a deliberately saturated server.
///
/// `connect` must yield clients of an orchestrator built with **one
/// worker and `queue_depth` 1**, serving `model` through a guard that
/// stalls each request for a few hundred milliseconds (see the loopback
/// tests for the canonical setup). The helper occupies the worker, fills
/// the queue, then asserts the next request is rejected with the typed
/// [`RuntimeError::Overloaded`] carrying the server's depth.
pub fn check_overload<C>(connect: impl Fn() -> C, model: &str, input_dim: usize)
where
    C: ClientApi + Send + 'static,
{
    let input: Vec<f64> = (0..input_dim).map(|i| (i as f64 * 0.13).cos()).collect();
    let occupant = {
        let client = connect();
        let model = model.to_string();
        let input = input.clone();
        std::thread::spawn(move || {
            pass(
                "overload: put",
                client.put_tensor("ovl/occupant-in", &input),
            );
            pass(
                "overload: occupant run",
                client.run_model(&model, "ovl/occupant-in", "ovl/occupant-out"),
            );
        })
    };
    // Let the occupant reach the worker, then saturate the queue.
    std::thread::sleep(Duration::from_millis(100));
    let filler = {
        let client = connect();
        let model = model.to_string();
        let input = input.clone();
        std::thread::spawn(move || {
            pass("overload: put", client.put_tensor("ovl/filler-in", &input));
            // Queued behind the occupant; completes after it.
            pass(
                "overload: filler run",
                client.run_model(&model, "ovl/filler-in", "ovl/filler-out"),
            );
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    let client = connect();
    pass("overload: put", client.put_tensor("ovl/reject-in", &input));
    let err = client
        .run_model(model, "ovl/reject-in", "ovl/reject-out")
        .expect_err("conformance: a saturated queue must reject");
    assert_eq!(
        err,
        RuntimeError::Overloaded { queue_depth: 1 },
        "conformance: rejection must be typed with the server's queue depth"
    );

    assert!(
        occupant.join().is_ok(),
        "conformance: overload occupant thread panicked"
    );
    assert!(
        filler.join().is_ok(),
        "conformance: overload filler thread panicked"
    );
}
