//! Serving-side telemetry: every metric the orchestrator maintains in its
//! private [`hpcnet_telemetry::Registry`], with cached per-model handles
//! so the hot path records lock-free, plus the mapping that derives the
//! legacy [`ServingStats`] view from a registry snapshot.
//!
//! Metric names follow DESIGN.md §11: `hpcnet_serving_*`, with `_total`
//! counters, `_seconds` latency histograms (recorded in nanoseconds,
//! scaled at exposition), a `model` label on per-model series, and a
//! `stage` label (`fetch` / `encode` / `infer` / `guard` / `fallback`)
//! on the per-stage timing histogram.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use hpcnet_telemetry::trace::stage_names;
use hpcnet_telemetry::{Counter, FlightRecorder, FlightRecorderConfig, Histogram, Registry};
use parking_lot::RwLock;

use crate::perf::ServingStats;

/// Declares the serving metric-name constants and derives the
/// [`METRIC_HELP`] table from their doc comments, so the `# HELP` text
/// the registry exposes can never drift from the rustdoc.
macro_rules! serving_metric_consts {
    ($( $(#[doc = $doc:expr])+ pub const $ident:ident: &str = $value:literal; )+) => {
        $( $(#[doc = $doc])+ pub const $ident: &str = $value; )+

        /// `(family, help)` pairs for every serving metric above; the
        /// help text is the constant's own doc comment. Registered into
        /// the orchestrator's registry via [`Registry::set_helps`] so
        /// `prometheus_text()` pairs each `# TYPE` with a `# HELP`.
        pub const METRIC_HELP: &[(&str, &str)] = &[
            $( ($value, concat!($($doc),+)) ),+
        ];
    };
}

serving_metric_consts! {
    /// Requests executed, labeled by `model`.
    pub const REQUESTS_TOTAL: &str = "hpcnet_serving_requests_total";
    /// Requests that completed with an error, labeled by `model`.
    pub const ERRORS_TOTAL: &str = "hpcnet_serving_errors_total";
    /// Batched forward passes executed (one per coalesced model group).
    pub const BATCHES_TOTAL: &str = "hpcnet_serving_batches_total";
    /// Distribution of coalesced batch sizes (dimensionless).
    pub const BATCH_SIZE: &str = "hpcnet_serving_batch_size";
    /// Wall time workers spent executing groups.
    pub const BUSY_SECONDS: &str = "hpcnet_serving_busy_seconds";
    /// Per-request time from enqueue to worker pickup, labeled by `model`.
    pub const QUEUE_WAIT_SECONDS: &str = "hpcnet_serving_queue_wait_seconds";
    /// Per-group stage timings, labeled by `model` and `stage`.
    pub const STAGE_SECONDS: &str = "hpcnet_serving_stage_seconds";
    /// Requests rejected at enqueue because the admission queue was full.
    pub const OVERLOAD_REJECTED_TOTAL: &str = "hpcnet_serving_overload_rejected_total";
    /// Admitted requests whose deadline passed before execution.
    pub const DEADLINE_EXPIRED_TOTAL: &str = "hpcnet_serving_deadline_expired_total";
    /// Guarded requests whose surrogate output passed the validator.
    pub const QUALITY_HITS_TOTAL: &str = "hpcnet_serving_quality_hits_total";
    /// Guarded requests answered by the fallback (original region).
    pub const QUALITY_FALLBACKS_TOTAL: &str = "hpcnet_serving_quality_fallbacks_total";
    /// Guarded requests rejected with no fallback registered.
    pub const QUALITY_REJECTED_TOTAL: &str = "hpcnet_serving_quality_rejected_total";
    /// Requests whose stored answer came from the opt-in `f32` kernel path.
    pub const F32_SERVED_TOTAL: &str = "hpcnet_serving_f32_served_total";
    /// Guarded `f32` outputs the validator rejected and the `f64` surrogate
    /// recomputed per request (precision demotion, DESIGN.md §14).
    pub const F32_FALLBACKS_TOTAL: &str = "hpcnet_serving_f32_fallbacks_total";
    /// Requests whose completed trace the flight recorder retained.
    pub const TRACES_RETAINED_TOTAL: &str = "hpcnet_serving_traces_retained_total";
    /// Requests that ran past the slow-request threshold and were logged.
    pub const SLOW_REQUESTS_TOTAL: &str = "hpcnet_serving_slow_requests_total";
    /// Currently served version of each registered model (gauge,
    /// monotonically increasing except across a probation rollback),
    /// labeled by `model`.
    pub const MODEL_VERSION: &str = "hpcnet_model_version";
    /// Guard-fallback training samples captured into the online replay
    /// buffer, labeled by `model`.
    pub const RETRAIN_SAMPLES_TOTAL: &str = "hpcnet_retrain_samples_total";
    /// Background fine-tune runs executed, labeled by `model`.
    pub const RETRAIN_RUNS_TOTAL: &str = "hpcnet_retrain_runs_total";
    /// Fine-tuned candidates atomically hot-swapped into serving,
    /// labeled by `model`.
    pub const RETRAIN_SWAPS_TOTAL: &str = "hpcnet_retrain_swaps_total";
    /// Hot-swapped candidates rolled back after a probation regression,
    /// labeled by `model`.
    pub const RETRAIN_ROLLBACKS_TOTAL: &str = "hpcnet_retrain_rollbacks_total";
    /// Fine-tuned candidates rejected by held-out validation before any
    /// swap, labeled by `model`.
    pub const RETRAIN_REJECTED_TOTAL: &str = "hpcnet_retrain_rejected_total";
}

/// Event kind: admission queue full, request rejected at enqueue.
pub const EVENT_OVERLOAD: &str = "overload_rejected";
/// Event kind: queued request expired before its batch ran.
pub const EVENT_DEADLINE: &str = "deadline_expired";
/// Event kind: validator rejected an output, fallback answered.
pub const EVENT_QUALITY_FALLBACK: &str = "quality_fallback";
/// Event kind: validator rejected an output, no fallback registered.
pub const EVENT_QUALITY_REJECTED: &str = "quality_rejected";
/// Event kind: validator rejected an `f32` output; the request was
/// demoted to the `f64` surrogate before any fallback/reject decision.
pub const EVENT_F32_DEMOTED: &str = "f32_demoted";
/// Event kind: the online retrainer atomically swapped a fine-tuned
/// candidate into serving; `value` carries the new version.
pub const EVENT_MODEL_SWAP: &str = "model_swap";
/// Event kind: probation detected a regression and the previous model
/// version was reinstalled; `value` carries the restored version.
pub const EVENT_MODEL_ROLLBACK: &str = "model_rollback";

/// Cached instrument handles for one model: resolved against the registry
/// once, then recorded into lock-free.
pub(crate) struct ModelMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    queue_wait: Arc<Histogram>,
    fetch: Arc<Histogram>,
    encode: Arc<Histogram>,
    infer: Arc<Histogram>,
    infer_f32: Arc<Histogram>,
    guard: Arc<Histogram>,
    fallback: Arc<Histogram>,
}

impl ModelMetrics {
    fn new(reg: &Registry, model: &str) -> Self {
        let stage = |s: &str| reg.time_histogram(STAGE_SECONDS, &[("model", model), ("stage", s)]);
        ModelMetrics {
            requests: reg.counter_with(REQUESTS_TOTAL, &[("model", model)]),
            errors: reg.counter_with(ERRORS_TOTAL, &[("model", model)]),
            queue_wait: reg.time_histogram(QUEUE_WAIT_SECONDS, &[("model", model)]),
            fetch: stage(stage_names::FETCH),
            encode: stage(stage_names::ENCODE),
            infer: stage(stage_names::INFER),
            infer_f32: stage(stage_names::INFER_F32),
            guard: stage(stage_names::GUARD),
            fallback: stage(stage_names::FALLBACK),
        }
    }
}

/// Timing split of one executed group. `infer` is the whole
/// inference-and-scatter wall time *including* f32-kernel, guard, and
/// fallback work; [`ServingMetrics::record_group`] attributes the
/// `infer_f32`/guard/fallback shares to their own stages.
#[derive(Clone, Default)]
pub(crate) struct StageTimes {
    pub(crate) fetch: Duration,
    pub(crate) encode: Duration,
    pub(crate) infer: Duration,
    pub(crate) infer_f32: Duration,
    pub(crate) guard: Duration,
    pub(crate) fallback: Duration,
    pub(crate) busy: Duration,
}

/// Bound on retained slow-request log lines (the newest are kept).
const SLOW_LOG_CAPACITY: usize = 256;

/// The orchestrator's metrics front end: a private registry plus cached
/// handles for the global counters, one [`ModelMetrics`] per model, the
/// trace [`FlightRecorder`], and the bounded slow-request log.
pub(crate) struct ServingMetrics {
    registry: Arc<Registry>,
    recorder: Arc<FlightRecorder>,
    batches: Arc<Counter>,
    batch_size: Arc<Histogram>,
    busy: Arc<Histogram>,
    overload_rejected: Arc<Counter>,
    deadline_expired: Arc<Counter>,
    quality_hits: Arc<Counter>,
    quality_fallbacks: Arc<Counter>,
    quality_rejected: Arc<Counter>,
    f32_served: Arc<Counter>,
    f32_fallbacks: Arc<Counter>,
    traces_retained: Arc<Counter>,
    slow_requests: Arc<Counter>,
    per_model: RwLock<HashMap<String, Arc<ModelMetrics>>>,
    slow_log: RwLock<std::collections::VecDeque<String>>,
}

impl ServingMetrics {
    pub(crate) fn new(registry: Arc<Registry>, recorder_config: FlightRecorderConfig) -> Self {
        registry.set_helps(METRIC_HELP);
        let recorder = if registry.is_enabled() {
            Arc::new(FlightRecorder::new(recorder_config))
        } else {
            Arc::new(FlightRecorder::disabled())
        };
        ServingMetrics {
            recorder,
            batches: registry.counter(BATCHES_TOTAL),
            batch_size: registry.value_histogram(BATCH_SIZE, &[]),
            busy: registry.time_histogram(BUSY_SECONDS, &[]),
            overload_rejected: registry.counter(OVERLOAD_REJECTED_TOTAL),
            deadline_expired: registry.counter(DEADLINE_EXPIRED_TOTAL),
            quality_hits: registry.counter(QUALITY_HITS_TOTAL),
            quality_fallbacks: registry.counter(QUALITY_FALLBACKS_TOTAL),
            quality_rejected: registry.counter(QUALITY_REJECTED_TOTAL),
            f32_served: registry.counter(F32_SERVED_TOTAL),
            f32_fallbacks: registry.counter(F32_FALLBACKS_TOTAL),
            traces_retained: registry.counter(TRACES_RETAINED_TOTAL),
            slow_requests: registry.counter(SLOW_REQUESTS_TOTAL),
            per_model: RwLock::new(HashMap::new()),
            slow_log: RwLock::new(std::collections::VecDeque::new()),
            registry,
        }
    }

    /// The trace flight recorder (disabled when the registry is).
    pub(crate) fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Offer a completed request trace to the flight recorder.
    pub(crate) fn record_trace(&self, trace: hpcnet_telemetry::Trace) {
        if self.recorder.record(trace) {
            self.traces_retained.inc();
        }
    }

    /// Log one slow request: a structured JSON line to stderr plus the
    /// bounded in-memory tail [`slow_log`](Self::slow_log) tests and
    /// operators can read back.
    pub(crate) fn record_slow_request(&self, line: String) {
        self.slow_requests.inc();
        eprintln!("{line}");
        let mut log = self.slow_log.write();
        if log.len() >= SLOW_LOG_CAPACITY {
            log.pop_front();
        }
        log.push_back(line);
    }

    /// Retained slow-request log lines, oldest first.
    pub(crate) fn slow_log(&self) -> Vec<String> {
        self.slow_log.read().iter().cloned().collect()
    }

    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A shareable handle to the registry, for subsystems (e.g. the
    /// networked server) that record their own instruments alongside the
    /// serving metrics.
    pub(crate) fn registry_arc(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// The cached handle bundle for a model, creating it on first use.
    /// Racing creators both resolve to the same registry instruments, so
    /// whichever insertion wins, counts land in one place.
    pub(crate) fn model(&self, name: &str) -> Arc<ModelMetrics> {
        if let Some(m) = self.per_model.read().get(name) {
            return m.clone();
        }
        let m = Arc::new(ModelMetrics::new(&self.registry, name));
        self.per_model
            .write()
            .entry(name.to_string())
            .or_insert(m)
            .clone()
    }

    /// Charge the enqueue-to-pickup wait of one request.
    pub(crate) fn record_queue_wait(&self, model: &str, wait: Duration) {
        self.model(model).queue_wait.record_duration(wait);
    }

    /// Charge one admission rejection (bounded queue full).
    pub(crate) fn record_overload(&self, model: &str, queue_depth: usize) {
        self.overload_rejected.inc();
        self.registry.record_event(
            EVENT_OVERLOAD,
            model,
            "admission queue full",
            queue_depth as f64,
        );
    }

    /// Charge `n` request pairs that expired in the queue.
    pub(crate) fn record_deadline_expired(&self, model: &str, n: u64, in_key: &str) {
        self.deadline_expired.add(n);
        self.registry
            .record_event(EVENT_DEADLINE, model, in_key, n as f64);
    }

    /// Charge one executed model group: request/error counts, batch shape,
    /// and the per-stage timing split.
    pub(crate) fn record_group(&self, model: &str, size: usize, errors: usize, times: &StageTimes) {
        let m = self.model(model);
        m.requests.add(size as u64);
        m.errors.add(errors as u64);
        m.fetch.record_duration(times.fetch);
        m.encode.record_duration(times.encode);
        m.infer.record_duration(
            times
                .infer
                .saturating_sub(times.infer_f32 + times.guard + times.fallback),
        );
        if !times.infer_f32.is_zero() {
            m.infer_f32.record_duration(times.infer_f32);
        }
        if !times.guard.is_zero() {
            m.guard.record_duration(times.guard);
        }
        if !times.fallback.is_zero() {
            m.fallback.record_duration(times.fallback);
        }
        self.batches.inc();
        self.batch_size.record(size as u64);
        self.busy.record_duration(times.busy);
    }

    /// Charge `n` requests that failed outside any recorded group — e.g.
    /// the worker loop's panic backstop, which answers every pending slot
    /// with a typed error. They count as both requests and errors so the
    /// `ServingStats` totals stay consistent with delivered replies
    /// (`fail_pending` only fills slots no `record_group` has charged).
    pub(crate) fn record_request_errors(&self, model: &str, n: u64) {
        let m = self.model(model);
        m.requests.add(n);
        m.errors.add(n);
    }

    /// Charge quality-guard outcome tallies for one executed group.
    pub(crate) fn record_quality(&self, hits: u64, fallbacks: u64, rejected: u64) {
        self.quality_hits.add(hits);
        self.quality_fallbacks.add(fallbacks);
        self.quality_rejected.add(rejected);
    }

    /// Charge reduced-precision tallies for one executed group: requests
    /// answered by the `f32` kernels and requests demoted back to `f64`.
    pub(crate) fn record_f32(&self, served: u64, fallbacks: u64) {
        self.f32_served.add(served);
        self.f32_fallbacks.add(fallbacks);
    }

    /// Record one quality-guard anomaly event (fallback or rejection):
    /// `value` carries the first element of the rejected surrogate output.
    pub(crate) fn quality_event(&self, kind: &str, model: &str, in_key: &str, value: f64) {
        self.registry.record_event(kind, model, in_key, value);
    }

    /// Set the served-version gauge for `model`. Called at registration
    /// and on every hot-swap / rollback.
    pub(crate) fn set_model_version(&self, model: &str, version: u64) {
        self.registry
            .gauge_with(MODEL_VERSION, &[("model", model)])
            .set(version as f64);
    }

    /// Charge `n` replay samples captured from the guard-fallback path.
    pub(crate) fn record_retrain_samples(&self, model: &str, n: u64) {
        self.registry
            .counter_with(RETRAIN_SAMPLES_TOTAL, &[("model", model)])
            .add(n);
    }

    /// Charge one background fine-tune run and its wall time under the
    /// `retrain` stage histogram. Cold path — runs are spaced by the
    /// retrain interval, so handles are resolved per call, not cached.
    pub(crate) fn record_retrain_run(&self, model: &str, took: Duration) {
        self.registry
            .counter_with(RETRAIN_RUNS_TOTAL, &[("model", model)])
            .inc();
        self.registry
            .time_histogram(
                STAGE_SECONDS,
                &[("model", model), ("stage", stage_names::RETRAIN)],
            )
            .record_duration(took);
    }

    /// Charge one atomic hot-swap to `version` plus its audit event.
    pub(crate) fn record_retrain_swap(&self, model: &str, version: u64, message: &str) {
        self.registry
            .counter_with(RETRAIN_SWAPS_TOTAL, &[("model", model)])
            .inc();
        self.set_model_version(model, version);
        self.registry
            .record_event(EVENT_MODEL_SWAP, model, message, version as f64);
    }

    /// Charge one probation rollback to `version` plus its audit event.
    pub(crate) fn record_retrain_rollback(&self, model: &str, version: u64, message: &str) {
        self.registry
            .counter_with(RETRAIN_ROLLBACKS_TOTAL, &[("model", model)])
            .inc();
        self.set_model_version(model, version);
        self.registry
            .record_event(EVENT_MODEL_ROLLBACK, model, message, version as f64);
    }

    /// Charge one candidate rejected by held-out validation.
    pub(crate) fn record_retrain_rejected(&self, model: &str) {
        self.registry
            .counter_with(RETRAIN_REJECTED_TOTAL, &[("model", model)])
            .inc();
    }

    /// The legacy cumulative-stats view, derived from the registry.
    pub(crate) fn stats(&self) -> ServingStats {
        ServingStats::from_registry_snapshot(&self.registry.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(busy_ms: u64) -> StageTimes {
        StageTimes {
            fetch: Duration::from_millis(1),
            encode: Duration::from_millis(2),
            infer: Duration::from_millis(7),
            infer_f32: Duration::ZERO,
            guard: Duration::from_millis(1),
            fallback: Duration::from_millis(2),
            busy: Duration::from_millis(busy_ms),
        }
    }

    #[test]
    fn stats_view_matches_recorded_groups() {
        let m = ServingMetrics::new(Arc::new(Registry::new()), FlightRecorderConfig::default());
        m.record_group("a", 9, 1, &times(10));
        m.record_group("b", 1, 0, &times(5));
        m.record_overload("a", 64);
        m.record_deadline_expired("b", 3, "in-key");
        m.record_quality(4, 2, 1);
        let s = m.stats();
        assert_eq!(s.requests, 10);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 2);
        assert_eq!(s.per_model["a"], 9);
        assert_eq!(s.per_model["b"], 1);
        assert_eq!(s.batch_hist[3], 1); // 9 -> [8, 16)
        assert_eq!(s.batch_hist[0], 1); // 1
        assert_eq!(s.busy, Duration::from_millis(15));
        assert_eq!(s.overload_rejected, 1);
        assert_eq!(s.deadline_expired, 3);
        assert_eq!(s.quality_hits, 4);
        assert_eq!(s.quality_fallbacks, 2);
        assert_eq!(s.quality_rejected, 1);
    }

    #[test]
    fn stage_split_attributes_guard_and_fallback() {
        let m = ServingMetrics::new(Arc::new(Registry::new()), FlightRecorderConfig::default());
        m.record_group("g", 2, 0, &times(11));
        let snap = m.registry().snapshot();
        let stage = |s: &str| {
            snap.find_histogram(STAGE_SECONDS, &[("model", "g"), ("stage", s)])
                .unwrap()
                .sum
        };
        // infer had 7 ms wall, of which 1 ms guard + 2 ms fallback.
        assert_eq!(stage("infer"), 4_000_000);
        assert_eq!(stage("guard"), 1_000_000);
        assert_eq!(stage("fallback"), 2_000_000);
        assert_eq!(stage("fetch"), 1_000_000);
    }

    #[test]
    fn f32_stage_and_counters_are_carved_out() {
        let m = ServingMetrics::new(Arc::new(Registry::new()), FlightRecorderConfig::default());
        let mut t = times(9);
        t.infer_f32 = Duration::from_millis(3);
        m.record_group("q", 4, 0, &t);
        m.record_f32(3, 1);
        let snap = m.registry().snapshot();
        let stage = |s: &str| {
            snap.find_histogram(STAGE_SECONDS, &[("model", "q"), ("stage", s)])
                .unwrap()
                .sum
        };
        // 7 ms infer wall minus 3 ms f32 + 1 ms guard + 2 ms fallback.
        assert_eq!(stage("infer"), 1_000_000);
        assert_eq!(stage("infer_f32"), 3_000_000);
        let s = m.stats();
        assert_eq!(s.f32_served, 3);
        assert_eq!(s.f32_fallbacks, 1);
    }

    #[test]
    fn disabled_registry_yields_empty_stats() {
        let m = ServingMetrics::new(
            Arc::new(Registry::disabled()),
            FlightRecorderConfig::default(),
        );
        m.record_group("a", 9, 1, &times(10));
        m.record_overload("a", 64);
        let s = m.stats();
        assert_eq!(s.requests, 0);
        assert_eq!(s.overload_rejected, 0);
        assert!(m.registry().snapshot().events.is_empty());
    }
}
