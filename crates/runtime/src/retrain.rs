//! The online-retraining driver (DESIGN.md §17): wires `hpcnet-online`'s
//! replay buffer, fine-tuner, and probation watchdog into the serving
//! path.
//!
//! Ownership split: `hpcnet-online` knows about networks and samples;
//! this module owns everything registry-shaped — capture on the
//! fallback path, the background retrainer thread, the versioned atomic
//! hot-swap (a pointer exchange under the registry write lock), and the
//! probation/rollback state machine driven by guard outcomes on the
//! worker threads.
//!
//! Swap/rollback safety rests on two properties:
//!
//! * workers clone the entry `Arc` out of the registry before executing a
//!   group, so a swap mid-batch never changes results mid-row and no
//!   request ever fails because of a swap;
//! * every install re-checks, under the write lock, that the entry it
//!   trained from (or put on probation) is still the served one
//!   (`Arc::ptr_eq`) — a racing re-registration wins and the stale
//!   swap/rollback is abandoned.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};
use hpcnet_online::{
    FineTuneOutcome, FineTuner, Probation, ProbationVerdict, ReplayBuffer, RetrainConfig,
};
use hpcnet_telemetry::trace::{self, stage_names, tags};
use hpcnet_telemetry::{SpanRecord, Trace, TraceId};
use parking_lot::Mutex;

use crate::metrics::{EVENT_MODEL_ROLLBACK, EVENT_MODEL_SWAP};
use crate::server::{ModelBundle, RegisteredModel, ServerCtx, TRACE_SERVICE};

/// Guard outcomes accumulated for a served model version since it was
/// installed (registration, swap, or rollback). Its miss rate is the
/// baseline the next swap's probation judges against.
#[derive(Debug, Default, Clone, Copy)]
struct GuardWindow {
    hits: u64,
    misses: u64,
}

impl GuardWindow {
    fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.misses as f64 / total as f64
    }
}

/// A freshly-swapped candidate under watch, with the entry it replaced
/// retained for rollback.
struct ProbationEntry {
    probation: Probation,
    /// The displaced version, reinstalled verbatim on rollback.
    prev: Arc<RegisteredModel>,
    /// The version under probation — rollback only fires if this exact
    /// entry is still the served one.
    candidate: Arc<RegisteredModel>,
}

/// Everything the online-retraining loop shares with the serving path.
pub(crate) struct OnlineState {
    config: RetrainConfig,
    buffer: ReplayBuffer,
    tuner: FineTuner,
    /// Baseline guard windows per model (models not on probation).
    windows: Mutex<HashMap<String, GuardWindow>>,
    /// Models currently on probation.
    probation: Mutex<HashMap<String, ProbationEntry>>,
    /// Last fine-tune run per model (trigger spacing).
    last_runs: Mutex<HashMap<String, Instant>>,
}

impl OnlineState {
    pub(crate) fn new(config: RetrainConfig) -> Self {
        OnlineState {
            buffer: ReplayBuffer::new(config.capacity),
            tuner: FineTuner::new(config.clone()),
            config,
            windows: Mutex::new(HashMap::new()),
            probation: Mutex::new(HashMap::new()),
            last_runs: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn config(&self) -> &RetrainConfig {
        &self.config
    }

    /// Buffered replay samples for `model` (test/observability hook).
    pub(crate) fn buffered(&self, model: &str) -> usize {
        self.buffer.len(model)
    }

    /// Forget everything known about `model`: its replay samples (they
    /// were captured under the old bundle's scalers), its baseline
    /// window, and any probation. Called on (re-)registration.
    pub(crate) fn reset_model(&self, model: &str) {
        let _ = self.buffer.drain(model);
        self.windows.lock().remove(model);
        self.probation.lock().remove(model);
        self.last_runs.lock().remove(model);
    }
}

/// Capture one guard-fallback pair on the worker thread. `feature` is the
/// row exactly as the surrogate saw it (post-encode, post-scaler);
/// `exact` is the fallback's answer in physical units, standardized here
/// into the surrogate's output space so the fine-tuner trains in model
/// space and the candidate serves behind the unchanged bundle transforms.
pub(crate) fn capture(
    ctx: &ServerCtx,
    entry: &RegisteredModel,
    model: &str,
    feature: &[f64],
    exact: &[f64],
) {
    let Some(online) = &ctx.online else {
        return;
    };
    let mut target = exact.to_vec();
    if let Some(os) = &entry.bundle.output_scaler {
        os.transform_vec(&mut target);
    }
    online.buffer.push(model, feature, &target);
    ctx.metrics.record_retrain_samples(model, 1);
}

/// Feed one executed group's guard outcomes into the baseline window or,
/// for a model on probation, into its verdict — executing rollback
/// inline when the candidate regressed.
pub(crate) fn observe_guard(ctx: &ServerCtx, model: &str, hits: u64, misses: u64) {
    let Some(online) = &ctx.online else {
        return;
    };
    let taken = {
        let mut probation = online.probation.lock();
        let Some(entry) = probation.get_mut(model) else {
            drop(probation);
            let mut windows = online.windows.lock();
            let w = windows.entry(model.to_string()).or_default();
            w.hits += hits;
            w.misses += misses;
            return;
        };
        match entry.probation.observe(hits, misses) {
            None => return,
            Some(v) => probation.remove(model).map(|e| (v, e)),
        }
    };
    let Some((verdict, entry)) = taken else {
        return;
    };
    match verdict {
        ProbationVerdict::Pass => {
            // Graduated: release the retained previous version; the
            // probation window the candidate just served becomes its
            // baseline window going forward.
            let observed = entry.probation.observed();
            let misses = (entry.probation.miss_rate() * observed as f64).round() as u64;
            online.windows.lock().insert(
                model.to_string(),
                GuardWindow {
                    hits: observed.saturating_sub(misses),
                    misses,
                },
            );
        }
        ProbationVerdict::Rollback => {
            rollback(ctx, online, model, entry);
        }
    }
}

/// Reinstall the displaced version — unless a racing re-registration or
/// swap already replaced the probationary candidate, in which case the
/// rollback is stale and abandoned.
fn rollback(ctx: &ServerCtx, online: &OnlineState, model: &str, entry: ProbationEntry) {
    let restored = {
        let mut registry = ctx.registry.write();
        match registry.get(model) {
            Some(current) if Arc::ptr_eq(current, &entry.candidate) => {
                registry.insert(model.to_string(), Arc::clone(&entry.prev));
                true
            }
            _ => false,
        }
    };
    if !restored {
        return;
    }
    // The candidate's samples trained a regressing net; drop them and
    // start the restored version with a clean window and fresh captures.
    let _ = online.buffer.drain(model);
    online
        .windows
        .lock()
        .insert(model.to_string(), GuardWindow::default());
    let message = format!(
        "probation miss rate {:.3} vs baseline {:.3}: restored v{}",
        entry.probation.miss_rate(),
        entry.probation.baseline_miss_rate(),
        entry.prev.version,
    );
    ctx.metrics
        .record_retrain_rollback(model, entry.prev.version, &message);
    record_retrain_trace(
        ctx,
        model,
        EVENT_MODEL_ROLLBACK,
        entry.prev.version,
        Duration::ZERO,
    );
}

/// One retrainer tick: for every model with buffered samples, check the
/// trigger (enough samples, enough spacing, not on probation), fine-tune
/// a clone of the served net, and hot-swap validated improvements.
pub(crate) fn retrain_pass(ctx: &ServerCtx) {
    let Some(online) = &ctx.online else {
        return;
    };
    for model in online.buffer.models() {
        if online.probation.lock().contains_key(&model) {
            continue;
        }
        if online.buffer.len(&model) < online.config.min_samples {
            continue;
        }
        let spaced = match online.last_runs.lock().get(&model) {
            Some(t) => t.elapsed() >= online.config.min_interval,
            None => true,
        };
        if !spaced {
            continue;
        }
        let entry: Option<Arc<RegisteredModel>> = ctx.registry.read().get(&model).cloned();
        let Some(entry) = entry else {
            // Unregistered mid-flight: discard its samples.
            let _ = online.buffer.drain(&model);
            continue;
        };
        let samples = online.buffer.drain(&model);
        let t0 = Instant::now();
        let outcome = online.tuner.fine_tune(&entry.bundle.surrogate, &samples);
        let took = t0.elapsed();
        online
            .last_runs
            .lock()
            .insert(model.clone(), Instant::now());
        ctx.metrics.record_retrain_run(&model, took);
        match outcome {
            FineTuneOutcome::Improved {
                net,
                baseline_rmse,
                candidate_rmse,
                ..
            } => install_candidate(
                ctx,
                online,
                &model,
                &entry,
                net,
                baseline_rmse,
                candidate_rmse,
                took,
            ),
            FineTuneOutcome::Rejected { .. }
            | FineTuneOutcome::Unsupported
            | FineTuneOutcome::Failed(_) => {
                ctx.metrics.record_retrain_rejected(&model);
            }
            FineTuneOutcome::TooFewSamples { .. } => {
                // The drain raced ragged/short captures; the next window
                // of fallbacks refills the buffer.
            }
        }
    }
}

/// Atomically hot-swap a validated candidate in and put it on probation.
/// The new entry shares the old bundle's encoder and scalers (the
/// candidate trained in the same model space) and — under
/// `serve_f32(true)` — re-quantizes the fine-tuned weights to fresh
/// `f32` kernels.
#[allow(clippy::too_many_arguments)]
fn install_candidate(
    ctx: &ServerCtx,
    online: &OnlineState,
    model: &str,
    trained_from: &Arc<RegisteredModel>,
    net: hpcnet_nn::SurrogateNet,
    baseline_rmse: f64,
    candidate_rmse: f64,
    took: Duration,
) {
    let bundle = ModelBundle {
        surrogate: net,
        autoencoder: trained_from.bundle.autoencoder.clone(),
        scaler: trained_from.bundle.scaler.clone(),
        output_scaler: trained_from.bundle.output_scaler.clone(),
    };
    let version = trained_from.version + 1;
    let candidate = Arc::new(RegisteredModel::new(
        Arc::new(bundle),
        trained_from.guard.clone(),
        ctx.serve_f32,
        version,
    ));
    let swapped = {
        let mut registry = ctx.registry.write();
        match registry.get(model) {
            Some(current) if Arc::ptr_eq(current, trained_from) => {
                registry.insert(model.to_string(), Arc::clone(&candidate));
                true
            }
            _ => false,
        }
    };
    if !swapped {
        // A re-registration or guard swap landed between drain and
        // install: the candidate trained from a stale entry.
        ctx.metrics.record_retrain_rejected(model);
        return;
    }
    // The window accumulated against the displaced version becomes the
    // probation baseline.
    let baseline = online
        .windows
        .lock()
        .remove(model)
        .unwrap_or_default()
        .miss_rate();
    online.probation.lock().insert(
        model.to_string(),
        ProbationEntry {
            probation: Probation::new(
                baseline,
                online.config.probation_window,
                online.config.miss_rate_tolerance,
            ),
            prev: Arc::clone(trained_from),
            candidate,
        },
    );
    let message = format!(
        "holdout rmse {baseline_rmse:.3e} -> {candidate_rmse:.3e}, baseline miss rate {baseline:.3}"
    );
    ctx.metrics.record_retrain_swap(model, version, &message);
    record_retrain_trace(ctx, model, EVENT_MODEL_SWAP, version, took);
}

/// Record a `retrain`-stage trace for a swap or rollback. Always
/// retained by the flight recorder (`tags::RETRAIN`): these events are
/// rare and operators audit them.
fn record_retrain_trace(ctx: &ServerCtx, model: &str, event: &str, version: u64, took: Duration) {
    if !ctx.metrics.recorder().is_enabled() {
        return;
    }
    let start = trace::unix_nanos_now().saturating_sub(took.as_nanos() as u64);
    let mut t = Trace::new(TraceId(trace::next_id()));
    t.push(
        SpanRecord::new(stage_names::RETRAIN, TRACE_SERVICE, start, took)
            .annotate("model", model)
            .annotate("event", event)
            .annotate("version", version),
    );
    t.tag(tags::RETRAIN);
    ctx.metrics.record_trace(t);
}

/// Body of the background retrainer thread: tick until the stop channel
/// signals (or the orchestrator is gone).
pub(crate) fn retrainer_loop(ctx: &ServerCtx, stop: &Receiver<()>, tick: Duration) {
    loop {
        match stop.recv_timeout(tick) {
            Err(RecvTimeoutError::Timeout) => retrain_pass(ctx),
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}
