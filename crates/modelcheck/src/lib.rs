//! A seeded stress-testing harness with a [`loom`]-compatible surface.
//!
//! The concurrency model tests in `hpcnet-telemetry` and `hpcnet-runtime`
//! are written against loom's API (`model`, `thread::spawn`, `sync::Arc`,
//! `sync::atomic::*`). Under `--cfg loom` (the CI `loom` job) they import
//! the real model checker, which exhaustively explores interleavings.
//! Under a plain `cargo test` they import this crate instead: the same
//! test body runs many times with deterministic, seeded `yield_now`
//! injection before every atomic operation and lock acquisition, which is
//! far weaker than exhaustive exploration but still shakes out ordering
//! bugs on real hardware — and keeps the model tests running in tier-1 CI
//! without any external dependency.
//!
//! The shim deliberately mirrors only the subset of loom's API the
//! workspace uses; extend it as the model tests grow.
//!
//! [`loom`]: https://docs.rs/loom

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::AtomicU64 as RawSeed;
// relaxed: the seed is only advisory randomness for yield injection; no
// other memory is published through it.
use std::sync::atomic::Ordering::Relaxed as SeedRelaxed;

/// Iterations of the closure per [`model`] call when
/// `HPCNET_MODEL_ITERS` is unset.
pub const DEFAULT_ITERATIONS: usize = 256;

/// Per-process iteration seed, re-stamped by [`model`] before every run.
static MODEL_SEED: RawSeed = RawSeed::new(0x9E37_79B9_7F4A_7C15);

thread_local! {
    static RNG_STATE: Cell<u64> = const { Cell::new(0) };
}

/// Advance a thread-local xorshift and yield the scheduler roughly one
/// time in four. Called before every shimmed atomic op and lock, so each
/// iteration of a model test sees a different interleaving.
fn maybe_yield() {
    let roll = RNG_STATE.with(|state| {
        let mut x = state.get();
        if x == 0 {
            let mut hasher = DefaultHasher::new();
            std::thread::current().id().hash(&mut hasher);
            x = (MODEL_SEED.load(SeedRelaxed) ^ hasher.finish()) | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state.set(x);
        x
    });
    if roll & 3 == 0 {
        std::thread::yield_now();
    }
}

/// Run `f` repeatedly with a fresh seed per iteration (loom's entry
/// point runs it once per explored interleaving; here each iteration is
/// one randomized schedule). Override the iteration count with the
/// `HPCNET_MODEL_ITERS` environment variable.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iterations = std::env::var("HPCNET_MODEL_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ITERATIONS);
    for iteration in 0..iterations as u64 {
        MODEL_SEED.store(
            0x9E37_79B9_7F4A_7C15u64.wrapping_mul(iteration + 1),
            SeedRelaxed,
        );
        RNG_STATE.with(|state| state.set(0));
        f();
    }
}

/// Thread spawning and yielding, mirroring `loom::thread`.
pub mod thread {
    pub use std::thread::{yield_now, JoinHandle};

    /// Spawn a thread, injecting a scheduling perturbation first.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::maybe_yield();
        std::thread::spawn(f)
    }
}

/// Synchronization primitives mirroring `loom::sync`.
pub mod sync {
    pub use std::sync::Arc;

    /// A mutex whose acquisitions perturb the schedule. The lock API
    /// mirrors `std` (and loom): `lock` returns a `LockResult`.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// A new unlocked mutex.
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Acquire the lock after a possible yield.
        pub fn lock(&self) -> std::sync::LockResult<std::sync::MutexGuard<'_, T>> {
            super::maybe_yield();
            self.0.lock()
        }
    }

    /// Atomics whose every operation perturbs the schedule.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! shim_atomic {
            ($name:ident, $raw:path, $value:ty) => {
                /// Shimmed atomic: identical semantics to `std`, with a
                /// seeded scheduling perturbation before each operation.
                #[derive(Debug, Default)]
                pub struct $name($raw);

                impl $name {
                    /// A new atomic holding `value`.
                    pub const fn new(value: $value) -> Self {
                        $name(<$raw>::new(value))
                    }

                    /// Atomic load.
                    pub fn load(&self, order: Ordering) -> $value {
                        super::super::maybe_yield();
                        self.0.load(order)
                    }

                    /// Atomic store.
                    pub fn store(&self, value: $value, order: Ordering) {
                        super::super::maybe_yield();
                        self.0.store(value, order);
                    }

                    /// Atomic swap.
                    pub fn swap(&self, value: $value, order: Ordering) -> $value {
                        super::super::maybe_yield();
                        self.0.swap(value, order)
                    }

                    /// Atomic compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $value,
                        new: $value,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$value, $value> {
                        super::super::maybe_yield();
                        self.0.compare_exchange(current, new, success, failure)
                    }

                    /// Atomic compare-exchange, allowed to fail spuriously.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $value,
                        new: $value,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$value, $value> {
                        super::super::maybe_yield();
                        self.0.compare_exchange_weak(current, new, success, failure)
                    }
                }
            };
        }

        macro_rules! shim_atomic_arith {
            ($name:ident, $value:ty) => {
                impl $name {
                    /// Atomic add, returning the previous value.
                    pub fn fetch_add(&self, value: $value, order: Ordering) -> $value {
                        super::super::maybe_yield();
                        self.0.fetch_add(value, order)
                    }

                    /// Atomic subtract, returning the previous value.
                    pub fn fetch_sub(&self, value: $value, order: Ordering) -> $value {
                        super::super::maybe_yield();
                        self.0.fetch_sub(value, order)
                    }

                    /// Atomic max, returning the previous value.
                    pub fn fetch_max(&self, value: $value, order: Ordering) -> $value {
                        super::super::maybe_yield();
                        self.0.fetch_max(value, order)
                    }
                }
            };
        }

        shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        shim_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        shim_atomic_arith!(AtomicU64, u64);
        shim_atomic_arith!(AtomicU32, u32);
        shim_atomic_arith!(AtomicUsize, usize);
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_every_iteration() {
        let runs = Arc::new(AtomicUsize::new(0));
        let counted = runs.clone();
        std::env::remove_var("HPCNET_MODEL_ITERS");
        super::model(move || {
            counted.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), super::DEFAULT_ITERATIONS);
    }

    #[test]
    fn shimmed_primitives_behave_like_std() {
        let total = Arc::new(AtomicUsize::new(0));
        let guarded = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let total = total.clone();
                let guarded = guarded.clone();
                super::thread::spawn(move || {
                    total.fetch_add(i, Ordering::SeqCst);
                    match guarded.lock() {
                        Ok(mut v) => v.push(i),
                        Err(poisoned) => poisoned.into_inner().push(i),
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("shim thread");
        }
        assert_eq!(total.load(Ordering::SeqCst), 6);
        match guarded.lock() {
            Ok(v) => assert_eq!(v.len(), 4),
            Err(_) => unreachable!("no panics while holding the lock"),
        };
    }
}
