//! Property-based tests for the tensor substrate's core invariants.

use hpcnet_tensor::sparse::Coo;
use hpcnet_tensor::{vecops, Matrix};
use proptest::prelude::*;

/// Strategy: a small dense matrix with bounded entries.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized"))
    })
}

/// Strategy: sparse entries for a fixed shape.
fn coo_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Coo> {
    prop::collection::vec((0..rows, 0..cols, -50.0f64..50.0), 0..40)
        .prop_map(move |ents| Coo::from_entries(rows, cols, ents).expect("in range"))
}

proptest! {
    #[test]
    fn transpose_involution(m in matrix_strategy(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left_and_right(m in matrix_strategy(8)) {
        let il = Matrix::identity(m.rows());
        let ir = Matrix::identity(m.cols());
        let left = il.matmul(&m).unwrap();
        let right = m.matmul(&ir).unwrap();
        for (a, b) in left.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in right.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matvec_t_agrees_with_transpose(m in matrix_strategy(8), seed in 0u64..1000) {
        let mut rng = hpcnet_tensor::rng::seeded(seed, "pt");
        let x = hpcnet_tensor::rng::uniform_vec(&mut rng, m.rows(), -1.0, 1.0);
        let a = m.matvec_t(&x).unwrap();
        let b = m.transpose().matvec(&x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_roundtrip_preserves_dense(coo in coo_strategy(6, 7)) {
        let csr = coo.to_csr();
        let dense = csr.to_dense();
        // Re-sparsify and re-densify: fixpoint after first round.
        let again = hpcnet_tensor::Csr::from_dense(&dense).to_dense();
        prop_assert_eq!(dense, again);
    }

    #[test]
    fn spmv_equals_dense_matvec(coo in coo_strategy(6, 7), seed in 0u64..1000) {
        let csr = coo.to_csr();
        let mut rng = hpcnet_tensor::rng::seeded(seed, "spmv");
        let x = hpcnet_tensor::rng::uniform_vec(&mut rng, 7, -2.0, 2.0);
        let s = csr.spmv(&x).unwrap();
        let d = csr.to_dense().matvec(&x).unwrap();
        for (u, v) in s.iter().zip(&d) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_transpose_involution(coo in coo_strategy(5, 9)) {
        let csr = coo.to_csr();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn dot_is_symmetric_and_cauchy_schwarz(
        a in prop::collection::vec(-10.0f64..10.0, 1..64),
        seed in 0u64..1000,
    ) {
        let mut rng = hpcnet_tensor::rng::seeded(seed, "dot");
        let b = hpcnet_tensor::rng::uniform_vec(&mut rng, a.len(), -10.0, 10.0);
        let ab = vecops::dot(&a, &b);
        let ba = vecops::dot(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab.abs() <= vecops::norm2(&a) * vecops::norm2(&b) + 1e-9);
    }

    #[test]
    fn rel_error_triangleish(a in prop::collection::vec(-10.0f64..10.0, 1..32)) {
        // Error of a vector against itself is zero; against its negation is 2.
        prop_assert_eq!(vecops::rel_l2_error(&a, &a), 0.0);
        let na: Vec<f64> = a.iter().map(|v| -v).collect();
        if vecops::norm2(&a) > 1e-6 {
            prop_assert!((vecops::rel_l2_error(&na, &a) - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_solve_recovers_solution(seed in 0u64..500, n in 2usize..12) {
        let mut rng = hpcnet_tensor::rng::seeded(seed, "chol");
        let a = hpcnet_tensor::rng::random_spd_csr(&mut rng, n, 2).to_dense();
        let x_true = hpcnet_tensor::rng::uniform_vec(&mut rng, n, -1.0, 1.0);
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve_spd(&b, 0.0).unwrap();
        prop_assert!(vecops::rel_l2_error(&x, &x_true) < 1e-6);
    }
}
