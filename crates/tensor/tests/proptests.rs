//! Property-based tests for the tensor substrate's core invariants.

use hpcnet_tensor::sparse::Coo;
use hpcnet_tensor::{kernels, vecops, Matrix, MatrixF32};
use proptest::prelude::*;

/// Strategy: a small dense matrix with bounded entries.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized"))
    })
}

/// Strategy: matrix entries with enough exact zeros mixed in that the
/// density probe sees both classes, so the kernel bit-identity proptests
/// exercise the branchless and the zero-skip path.
fn zero_inflated(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(prop_oneof![3 => Just(0.0f64), 2 => -100.0f64..100.0], len)
}

/// Strategy: a GEMM operand pair `A (m×k) · B (k×n)` over shapes that
/// include the degenerate cases (`m`, `k`, or `n` zero; 1-row; 1-col).
fn gemm_case(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (0..=max_dim, 0..=max_dim, 0..=max_dim).prop_flat_map(|(m, k, n)| {
        (zero_inflated(m * k), zero_inflated(k * n)).prop_map(move |(a, b)| {
            (
                Matrix::from_vec(m, k, a).expect("sized"),
                Matrix::from_vec(k, n, b).expect("sized"),
            )
        })
    })
}

/// Bitwise equality, stricter than `==` (distinguishes `+0.0` / `-0.0`):
/// the fast kernels must perform the naive loop's exact rounding sequence.
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Strategy: sparse entries for a fixed shape.
fn coo_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Coo> {
    prop::collection::vec((0..rows, 0..cols, -50.0f64..50.0), 0..40)
        .prop_map(move |ents| Coo::from_entries(rows, cols, ents).expect("in range"))
}

proptest! {
    #[test]
    fn transpose_involution(m in matrix_strategy(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left_and_right(m in matrix_strategy(8)) {
        let il = Matrix::identity(m.rows());
        let ir = Matrix::identity(m.cols());
        let left = il.matmul(&m).unwrap();
        let right = m.matmul(&ir).unwrap();
        for (a, b) in left.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in right.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matvec_t_agrees_with_transpose(m in matrix_strategy(8), seed in 0u64..1000) {
        let mut rng = hpcnet_tensor::rng::seeded(seed, "pt");
        let x = hpcnet_tensor::rng::uniform_vec(&mut rng, m.rows(), -1.0, 1.0);
        let a = m.matvec_t(&x).unwrap();
        let b = m.transpose().matvec(&x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_roundtrip_preserves_dense(coo in coo_strategy(6, 7)) {
        let csr = coo.to_csr();
        let dense = csr.to_dense();
        // Re-sparsify and re-densify: fixpoint after first round.
        let again = hpcnet_tensor::Csr::from_dense(&dense).to_dense();
        prop_assert_eq!(dense, again);
    }

    #[test]
    fn spmv_equals_dense_matvec(coo in coo_strategy(6, 7), seed in 0u64..1000) {
        let csr = coo.to_csr();
        let mut rng = hpcnet_tensor::rng::seeded(seed, "spmv");
        let x = hpcnet_tensor::rng::uniform_vec(&mut rng, 7, -2.0, 2.0);
        let s = csr.spmv(&x).unwrap();
        let d = csr.to_dense().matvec(&x).unwrap();
        for (u, v) in s.iter().zip(&d) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_transpose_involution(coo in coo_strategy(5, 9)) {
        let csr = coo.to_csr();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn dot_is_symmetric_and_cauchy_schwarz(
        a in prop::collection::vec(-10.0f64..10.0, 1..64),
        seed in 0u64..1000,
    ) {
        let mut rng = hpcnet_tensor::rng::seeded(seed, "dot");
        let b = hpcnet_tensor::rng::uniform_vec(&mut rng, a.len(), -10.0, 10.0);
        let ab = vecops::dot(&a, &b);
        let ba = vecops::dot(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab.abs() <= vecops::norm2(&a) * vecops::norm2(&b) + 1e-9);
    }

    #[test]
    fn rel_error_triangleish(a in prop::collection::vec(-10.0f64..10.0, 1..32)) {
        // Error of a vector against itself is zero; against its negation is 2.
        prop_assert_eq!(vecops::rel_l2_error(&a, &a), 0.0);
        let na: Vec<f64> = a.iter().map(|v| -v).collect();
        if vecops::norm2(&a) > 1e-6 {
            prop_assert!((vecops::rel_l2_error(&na, &a) - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fast_matmul_bit_identical_to_naive(case in gemm_case(10)) {
        let (a, b) = case;
        let c = a.matmul(&b).unwrap();
        let reference = kernels::naive_matmul(
            a.as_slice(), b.as_slice(), a.rows(), a.cols(), b.cols(),
        );
        prop_assert!(bits_eq(c.as_slice(), &reference));
    }

    #[test]
    fn parallel_matmul_bit_identical_to_naive(
        m in 64usize..80, k in 1usize..8, n in 1usize..8, seed in 0u64..1000,
    ) {
        // Above PAR_THRESHOLD rows: the rayon row-blocked path must
        // perform the same per-element rounding sequence as the naive
        // loop (row partitioning never splits a single accumulation).
        let mut rng = hpcnet_tensor::rng::seeded(seed, "par-mm");
        let a = Matrix::from_vec(m, k, hpcnet_tensor::rng::uniform_vec(&mut rng, m * k, -10.0, 10.0))
            .expect("sized");
        let b = Matrix::from_vec(k, n, hpcnet_tensor::rng::uniform_vec(&mut rng, k * n, -10.0, 10.0))
            .expect("sized");
        let c = a.matmul(&b).unwrap();
        let reference = kernels::naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        prop_assert!(bits_eq(c.as_slice(), &reference));
    }

    #[test]
    fn at_matmul_bit_identical_to_naive_transpose(
        k in 0usize..10, m in 0usize..10, n in 0usize..10, seed in 0u64..1000,
    ) {
        // A (k×m), B (k×n): Aᵀ·B must match naive(Aᵀ, B) bitwise.
        let mut rng = hpcnet_tensor::rng::seeded(seed, "at-mm");
        let mut adata = hpcnet_tensor::rng::uniform_vec(&mut rng, k * m, -10.0, 10.0);
        // Zero-inflate every third entry: both probe classes get hit.
        for v in adata.iter_mut().step_by(3) {
            *v = 0.0;
        }
        let a = Matrix::from_vec(k, m, adata).expect("sized");
        let b = Matrix::from_vec(k, n, hpcnet_tensor::rng::uniform_vec(&mut rng, k * n, -10.0, 10.0))
            .expect("sized");
        let fused = a.at_matmul(&b).unwrap();
        let at = a.transpose();
        let reference = kernels::naive_matmul(at.as_slice(), b.as_slice(), m, k, n);
        prop_assert!(bits_eq(fused.as_slice(), &reference));
    }

    #[test]
    fn vecmat_into_bit_identical_to_naive(
        k in 0usize..12, n in 0usize..12, seed in 0u64..1000,
    ) {
        let mut rng = hpcnet_tensor::rng::seeded(seed, "vecmat");
        // Zero out a prefix so some samples cross the sparse-probe line.
        let mut x = hpcnet_tensor::rng::uniform_vec(&mut rng, k, -5.0, 5.0);
        let zcut = (seed as usize) % (k + 1);
        for v in &mut x[..zcut] {
            *v = 0.0;
        }
        let w = Matrix::from_vec(k, n, hpcnet_tensor::rng::uniform_vec(&mut rng, k * n, -5.0, 5.0))
            .expect("sized");
        let mut out = vec![0.0; n];
        w.vecmat_into(&x, &mut out).unwrap();
        let reference = kernels::naive_matmul(&x, w.as_slice(), 1, k, n);
        prop_assert!(bits_eq(&out, &reference));
    }

    #[test]
    fn f32_matmul_bit_identical_to_naive(case in gemm_case(10)) {
        // The shared kernels must hold the same contract at f32.
        let (a64, b64) = case;
        let a = MatrixF32::from_f64(&a64);
        let b = MatrixF32::from_f64(&b64);
        if a.cols() == b.rows() {
            let c = a.matmul(&b).unwrap();
            let reference = kernels::naive_matmul(
                a.as_slice(), b.as_slice(), a.rows(), a.cols(), b.cols(),
            );
            prop_assert!(
                c.as_slice().len() == reference.len()
                    && c.as_slice()
                        .iter()
                        .zip(&reference)
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            );
        }
    }

    #[test]
    fn cholesky_solve_recovers_solution(seed in 0u64..500, n in 2usize..12) {
        let mut rng = hpcnet_tensor::rng::seeded(seed, "chol");
        let a = hpcnet_tensor::rng::random_spd_csr(&mut rng, n, 2).to_dense();
        let x_true = hpcnet_tensor::rng::uniform_vec(&mut rng, n, -1.0, 1.0);
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve_spd(&b, 0.0).unwrap();
        prop_assert!(vecops::rel_l2_error(&x, &x_true) < 1e-6);
    }
}
