//! Dense and sparse linear-algebra substrate for Auto-HPCnet.
//!
//! The paper's workloads manipulate dense vectors/matrices and sparse
//! matrices in COO/CSR form. This crate supplies those containers and the
//! kernels the rest of the workspace (neural networks, solvers, autoencoder,
//! Gaussian processes) is built on. Hot paths are parallelized with rayon
//! per the workspace's HPC guides. Training element types are `f64`; the
//! opt-in serving path additionally offers [`MatrixF32`] over the shared
//! dual-precision kernels in [`kernels`] (DESIGN.md §14).

pub mod dense;
pub mod dense32;
pub mod kernels;
pub mod rng;
pub mod sparse;
pub mod stats;
pub mod vecops;

pub use dense::Matrix;
pub use dense32::MatrixF32;
pub use sparse::{Coo, Csr};

/// Errors surfaced by tensor kernels.
///
/// Shape mismatches are programming errors in most numeric libraries and
/// would panic; we surface them as values so the NAS layer can treat a
/// mis-configured candidate architecture as an invalid sample rather than
/// aborting a long search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands disagreed on a dimension: `(expected, got, context)`.
    ShapeMismatch(usize, usize, &'static str),
    /// A matrix that must be square (e.g. a Cholesky operand) was not.
    NotSquare(usize, usize),
    /// A numeric routine failed (e.g. Cholesky of a non-PD matrix).
    Numerical(&'static str),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch(a, b, ctx) => {
                write!(f, "shape mismatch in {ctx}: expected {a}, got {b}")
            }
            TensorError::NotSquare(r, c) => write!(f, "matrix must be square, got {r}x{c}"),
            TensorError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
