//! Sparse matrix formats (COO and CSR) and kernels.
//!
//! The paper's motivating observation (§1, challenge 2) is that HPC inputs
//! are sparse matrices stored as COO/CSR/CRS, and that densifying them for
//! NN consumption costs both time and memory (14x blow-up for NPB CG). The
//! NN crate's sparse first layer consumes [`Csr`] directly.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::dense::Matrix;
use crate::{Result, TensorError};

/// Row count above which SpMV/SpMM parallelize over rows.
const PAR_THRESHOLD: usize = 256;

/// Coordinate-list sparse matrix: unordered `(row, col, value)` triples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// Creates an empty COO matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates a COO matrix from triples, validating indices.
    pub fn from_entries(
        nrows: usize,
        ncols: usize,
        entries: Vec<(usize, usize, f64)>,
    ) -> Result<Self> {
        for &(r, c, _) in &entries {
            if r >= nrows {
                return Err(TensorError::ShapeMismatch(nrows, r, "Coo row index"));
            }
            if c >= ncols {
                return Err(TensorError::ShapeMismatch(ncols, c, "Coo col index"));
            }
        }
        Ok(Coo {
            nrows,
            ncols,
            entries,
        })
    }

    /// Appends an entry. Duplicate coordinates are summed on conversion.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.entries.push((row, col, value));
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (before duplicate merging).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Borrow the raw triples.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Convert to CSR, sorting by (row, col) and summing duplicates.
    pub fn to_csr(&self) -> Csr {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(sorted.len());
        let mut data = Vec::with_capacity(sorted.len());
        indptr.push(0);
        let mut row = 0usize;
        for (r, c, v) in sorted {
            while row < r {
                indptr.push(indices.len());
                row += 1;
            }
            if let (Some(&last_c), true) = (indices.last(), indptr.len() == r + 1) {
                if last_c == c && !data.is_empty() {
                    *data.last_mut().expect("non-empty") += v;
                    continue;
                }
            }
            indices.push(c);
            data.push(v);
        }
        while row < self.nrows {
            indptr.push(indices.len());
            row += 1;
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            data,
        }
    }
}

/// Compressed Sparse Row matrix.
///
/// # Examples
///
/// ```
/// use hpcnet_tensor::Coo;
/// let mut coo = Coo::new(2, 3);
/// coo.push(0, 1, 2.0);
/// coo.push(1, 2, -1.0);
/// let csr = coo.to_csr();
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.spmv(&[1.0, 10.0, 100.0]).unwrap(), vec![20.0, -100.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from raw arrays, validating the invariants
    /// (`indptr` monotone, lengths consistent, column indices in range).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != nrows + 1 {
            return Err(TensorError::ShapeMismatch(
                nrows + 1,
                indptr.len(),
                "Csr indptr len",
            ));
        }
        if indices.len() != data.len() {
            return Err(TensorError::ShapeMismatch(
                indices.len(),
                data.len(),
                "Csr indices/data",
            ));
        }
        if *indptr.last().expect("indptr non-empty") != indices.len() {
            return Err(TensorError::ShapeMismatch(
                indices.len(),
                *indptr.last().unwrap(),
                "Csr indptr end",
            ));
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(TensorError::Numerical("Csr indptr must be non-decreasing"));
        }
        if indices.iter().any(|&c| c >= ncols) {
            return Err(TensorError::ShapeMismatch(
                ncols,
                indices.len(),
                "Csr col index",
            ));
        }
        Ok(Csr {
            nrows,
            ncols,
            indptr,
            indices,
            data,
        })
    }

    /// Builds a CSR matrix from a dense matrix, dropping zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut coo = Coo::new(m.rows(), m.cols());
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Densify. This is exactly the "unrolling" the paper's autoencoder
    /// avoids; it exists for testing and for the densifying baselines.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                *m.at_mut(i, self.indices[k]) = self.data[k];
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Fraction of stored entries over total entries.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows * self.ncols) as f64
    }

    /// Row pointer array (`nrows + 1` entries).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices, row-sorted.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Non-zero values aligned with [`Self::indices`].
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Iterate over the `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.indptr[i]..self.indptr[i + 1];
        self.indices[range.clone()]
            .iter()
            .copied()
            .zip(self.data[range].iter().copied())
    }

    /// Sparse matrix-vector product `self * x`, rayon-parallel over rows
    /// for large matrices.
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(TensorError::ShapeMismatch(self.ncols, x.len(), "spmv"));
        }
        let row_dot = |i: usize| -> f64 { self.row_iter(i).map(|(c, v)| v * x[c]).sum() };
        let out = if self.nrows >= PAR_THRESHOLD {
            (0..self.nrows).into_par_iter().map(row_dot).collect()
        } else {
            (0..self.nrows).map(row_dot).collect()
        };
        Ok(out)
    }

    /// Sparse x dense product `self * rhs -> dense`.
    ///
    /// This is the kernel behind the NN crate's sparse first layer (the
    /// paper's "TensorFlow embedding API" substitute): the sparse input is
    /// consumed directly, only the (small) result is dense.
    pub fn spmm_dense(&self, rhs: &Matrix) -> Result<Matrix> {
        if rhs.rows() != self.ncols {
            return Err(TensorError::ShapeMismatch(
                self.ncols,
                rhs.rows(),
                "spmm_dense",
            ));
        }
        let cols = rhs.cols();
        let mut out = Matrix::zeros(self.nrows, cols);
        let kernel = |(i, out_row): (usize, &mut [f64])| {
            for (c, v) in self.row_iter(i) {
                let b_row = rhs.row(c);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += v * b;
                }
            }
        };
        if self.nrows >= PAR_THRESHOLD {
            out.as_mut_slice()
                .par_chunks_mut(cols)
                .enumerate()
                .for_each(kernel);
        } else {
            out.as_mut_slice()
                .chunks_mut(cols)
                .enumerate()
                .for_each(kernel);
        }
        Ok(out)
    }

    /// Gather a row subset into a new CSR matrix (mini-batching over
    /// sparse training samples). Row order follows `idx`; rows may repeat.
    pub fn select_rows(&self, idx: &[usize]) -> Csr {
        let mut indptr = Vec::with_capacity(idx.len() + 1);
        indptr.push(0usize);
        let total: usize = idx
            .iter()
            .map(|&i| self.indptr[i + 1] - self.indptr[i])
            .sum();
        let mut indices = Vec::with_capacity(total);
        let mut data = Vec::with_capacity(total);
        for &i in idx {
            let range = self.indptr[i]..self.indptr[i + 1];
            indices.extend_from_slice(&self.indices[range.clone()]);
            data.extend_from_slice(&self.data[range]);
            indptr.push(indices.len());
        }
        Csr {
            nrows: idx.len(),
            ncols: self.ncols,
            indptr,
            indices,
            data,
        }
    }

    /// Transpose (CSR -> CSR of the transpose) via counting sort.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut data = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.nrows {
            for (c, v) in self.row_iter(i) {
                let pos = next[c];
                indices[pos] = i;
                data[pos] = v;
                next[c] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            data,
        }
    }

    /// Flatten the matrix into a length-`nrows*ncols` dense feature vector.
    ///
    /// Used by baselines that cannot consume sparse inputs (the paper's
    /// Autokeras comparison) — this is the memory blow-up the customized
    /// autoencoder exists to avoid.
    pub fn to_dense_vector(&self) -> Vec<f64> {
        self.to_dense().into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> Coo {
        let mut c = Coo::new(3, 4);
        c.push(0, 0, 1.0);
        c.push(0, 3, 2.0);
        c.push(1, 1, 3.0);
        c.push(2, 0, 4.0);
        c.push(2, 2, 5.0);
        c
    }

    #[test]
    fn coo_to_csr_roundtrips_through_dense() {
        let coo = sample_coo();
        let csr = coo.to_csr();
        let dense = csr.to_dense();
        assert_eq!(dense.at(0, 0), 1.0);
        assert_eq!(dense.at(0, 3), 2.0);
        assert_eq!(dense.at(1, 1), 3.0);
        assert_eq!(dense.at(2, 0), 4.0);
        assert_eq!(dense.at(2, 2), 5.0);
        assert_eq!(csr.nnz(), 5);
        assert_eq!(Csr::from_dense(&dense), csr);
    }

    #[test]
    fn coo_duplicates_are_summed() {
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 1.5);
        c.push(0, 1, 2.5);
        let csr = c.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.to_dense().at(0, 1), 4.0);
    }

    #[test]
    fn coo_rejects_out_of_range() {
        assert!(Coo::from_entries(2, 2, vec![(2, 0, 1.0)]).is_err());
        assert!(Coo::from_entries(2, 2, vec![(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn csr_from_raw_validates_invariants() {
        // indptr wrong length
        assert!(Csr::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // decreasing indptr
        assert!(Csr::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        // col out of range
        assert!(Csr::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // valid
        assert!(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn spmv_matches_dense_matvec() {
        let csr = sample_coo().to_csr();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let sparse = csr.spmv(&x).unwrap();
        let dense = csr.to_dense().matvec(&x).unwrap();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn spmv_rejects_wrong_length() {
        let csr = sample_coo().to_csr();
        assert!(csr.spmv(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let csr = sample_coo().to_csr();
        let b = Matrix::from_vec(4, 2, (0..8).map(|i| i as f64).collect()).unwrap();
        let sparse = csr.spmm_dense(&b).unwrap();
        let dense = csr.to_dense().matmul(&b).unwrap();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let csr = sample_coo().to_csr();
        let t = csr.transpose();
        assert_eq!(t.to_dense(), csr.to_dense().transpose());
        // involution
        assert_eq!(t.transpose().to_dense(), csr.to_dense());
    }

    #[test]
    fn density_counts_stored_entries() {
        let csr = sample_coo().to_csr();
        assert!((csr.density() - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn select_rows_matches_dense_gather() {
        let csr = sample_coo().to_csr();
        let sub = csr.select_rows(&[2, 0, 2]);
        let dense = csr.to_dense();
        assert_eq!(sub.nrows(), 3);
        assert_eq!(sub.to_dense().row(0), dense.row(2));
        assert_eq!(sub.to_dense().row(1), dense.row(0));
        assert_eq!(sub.to_dense().row(2), dense.row(2));
    }

    #[test]
    fn empty_rows_are_preserved() {
        let mut c = Coo::new(4, 3);
        c.push(3, 2, 9.0);
        let csr = c.to_csr();
        assert_eq!(csr.indptr(), &[0, 0, 0, 0, 1]);
        assert_eq!(
            csr.spmv(&[0.0, 0.0, 1.0]).unwrap(),
            vec![0.0, 0.0, 0.0, 9.0]
        );
    }
}
