// hpcnet-kernel: dual-precision
//! Unrolled GEMM micro-kernels shared by the `f64` and `f32` dense matrix
//! types.
//!
//! Three design rules govern everything in this module (DESIGN.md §14):
//!
//! 1. **Bit-compatibility.** Every fast kernel accumulates each output
//!    element strictly left-to-right over `k`, exactly like the naive
//!    triple loop. Rust never reassociates float arithmetic, so the
//!    4-wide unrolled update `o = o + a0*b0 + a1*b1 + a2*b2 + a3*b3`
//!    performs the same rounding sequence as four sequential `+=`s and
//!    the fast kernels are bit-identical to [`naive_matmul`] for finite
//!    inputs (pinned by proptests in `tests/proptests.rs`).
//! 2. **Branchless by default.** The seed's unconditional
//!    `if aik == 0.0 { continue; }` zero-skip defeated autovectorization
//!    on dense weights; it survives only as [`gemm_row_zskip`], selected
//!    by the [`is_sparse`] density probe. For finite values the two paths
//!    differ only in work done, not in the result: the skipped terms
//!    contribute `±0.0` to an accumulator that is never `-0.0`.
//!    (Non-finite inputs differ: the branchless path propagates
//!    `0.0 * inf = NaN` per IEEE 754, the skip path drops it.)
//! 3. **Bounds checks out of the inner loop.** Rows of the right-hand
//!    side are carved out with `split_at` and walked with zipped slice
//!    iterators, so LLVM sees fixed-length streams and vectorizes.
//!
//! This file is a *dual-precision kernel module*: all arithmetic is
//! generic over [`Scalar`], and `hpcnet-analysis` flags any float literal
//! here that would silently default to `f64` (rule `f64-literal`).
//!
//! The module is deliberately dependency-free (no rayon/serde): callers
//! own the parallel row-blocking, and the bench harness can compile the
//! exact committed kernels standalone to measure them.

/// The element types the kernels are instantiated at.
///
/// `ZERO` is an associated const rather than `Default::default()` so the
/// density probe and the zero-skip compare against the literal the naive
/// reference uses.
pub trait Scalar:
    Copy
    + PartialEq
    + PartialOrd
    + std::ops::Add<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::AddAssign
{
    /// Additive identity of the element type.
    const ZERO: Self;
}

impl Scalar for f64 {
    // hpcnet-lint: allow(f64-literal) -- the f64 instantiation of Scalar is the one place an f64 literal is the point
    const ZERO: f64 = 0.0f64;
}

impl Scalar for f32 {
    const ZERO: f32 = 0.0f32;
}

/// Number of elements the density probe samples (evenly strided) before
/// deciding between the branchless and zero-skip kernels.
pub const PROBE_SAMPLES: usize = 128;

/// Cheap density probe: `true` when at least three quarters of up to
/// [`PROBE_SAMPLES`] evenly-strided elements of `data` are exactly zero.
///
/// Deterministic in `data` alone, so every kernel that probes the same
/// buffer picks the same path — `matmul`, `at_matmul`, and `vecmat_into`
/// stay mutually bit-identical (their cross-path tests use `assert_eq!`).
/// The 75% threshold is where the zero-skip's saved work outweighs the
/// vectorization it forfeits on the surviving rows.
pub fn is_sparse<T: Scalar>(data: &[T]) -> bool {
    if data.is_empty() {
        return false;
    }
    let samples = PROBE_SAMPLES.min(data.len());
    let stride = data.len() / samples;
    let mut zeros = 0usize;
    let mut i = 0usize;
    for _ in 0..samples {
        if data[i] == T::ZERO {
            zeros += 1;
        }
        i += stride;
    }
    zeros * 4 >= samples * 3
}

/// One output row of a row-major GEMM: `out_row += a_row · B`, where `b`
/// is the flat row-major right-hand side (`a_row.len()` rows of `cols`).
///
/// `k` is unrolled 4-wide so four `B` rows stream through one fused,
/// branchless inner loop; each output element still accumulates in
/// strictly increasing-`k` order (rule 1 above).
///
/// `out_row` is **not** cleared; callers zero it first.
pub fn gemm_row<T: Scalar>(a_row: &[T], b: &[T], cols: usize, out_row: &mut [T]) {
    debug_assert_eq!(b.len(), a_row.len() * cols);
    debug_assert_eq!(out_row.len(), cols);
    let kmax = a_row.len();
    let mut k = 0usize;
    while k + 4 <= kmax {
        let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
        let (b0, rest) = b[k * cols..].split_at(cols);
        let (b1, rest) = rest.split_at(cols);
        let (b2, rest) = rest.split_at(cols);
        let (b3, _) = rest.split_at(cols);
        for ((((o, &x0), &x1), &x2), &x3) in out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *o = *o + a0 * x0 + a1 * x1 + a2 * x2 + a3 * x3;
        }
        k += 4;
    }
    while k < kmax {
        let a = a_row[k];
        let b_row = &b[k * cols..(k + 1) * cols];
        for (o, &x) in out_row.iter_mut().zip(b_row) {
            *o += a * x;
        }
        k += 1;
    }
}

/// The zero-skip variant of [`gemm_row`], for rows the density probe
/// classified as sparse. This is the seed's original kernel; on dense
/// data it costs a branch per `k` and blocks vectorization, which is why
/// it is no longer unconditional.
pub fn gemm_row_zskip<T: Scalar>(a_row: &[T], b: &[T], cols: usize, out_row: &mut [T]) {
    debug_assert_eq!(b.len(), a_row.len() * cols);
    debug_assert_eq!(out_row.len(), cols);
    for (k, &a) in a_row.iter().enumerate() {
        if a == T::ZERO {
            continue;
        }
        let b_row = &b[k * cols..(k + 1) * cols];
        for (o, &x) in out_row.iter_mut().zip(b_row) {
            *o += a * x;
        }
    }
}

/// One output row of a fused transpose-GEMM: `out_row += Aᵀ[i] · B` where
/// the `a` values are read with stride `stride` at offset `offset`
/// (`a[offset + k*stride]`, `k` in `0..kmax`).
///
/// Same 4-wide unroll and accumulation order as [`gemm_row`]; only the
/// left-hand loads are strided gathers, which the sequential sweeps of
/// `b`/`out_row` amortize.
pub fn gemm_row_strided<T: Scalar>(
    kmax: usize,
    a: &[T],
    stride: usize,
    offset: usize,
    b: &[T],
    cols: usize,
    out_row: &mut [T],
) {
    debug_assert!(kmax == 0 || offset + (kmax - 1) * stride < a.len());
    debug_assert_eq!(b.len(), kmax * cols);
    debug_assert_eq!(out_row.len(), cols);
    let mut k = 0usize;
    while k + 4 <= kmax {
        let a0 = a[offset + k * stride];
        let a1 = a[offset + (k + 1) * stride];
        let a2 = a[offset + (k + 2) * stride];
        let a3 = a[offset + (k + 3) * stride];
        let (b0, rest) = b[k * cols..].split_at(cols);
        let (b1, rest) = rest.split_at(cols);
        let (b2, rest) = rest.split_at(cols);
        let (b3, _) = rest.split_at(cols);
        for ((((o, &x0), &x1), &x2), &x3) in out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *o = *o + a0 * x0 + a1 * x1 + a2 * x2 + a3 * x3;
        }
        k += 4;
    }
    while k < kmax {
        let a_k = a[offset + k * stride];
        let b_row = &b[k * cols..(k + 1) * cols];
        for (o, &x) in out_row.iter_mut().zip(b_row) {
            *o += a_k * x;
        }
        k += 1;
    }
}

/// Zero-skip variant of [`gemm_row_strided`] for probe-sparse matrices.
pub fn gemm_row_strided_zskip<T: Scalar>(
    kmax: usize,
    a: &[T],
    stride: usize,
    offset: usize,
    b: &[T],
    cols: usize,
    out_row: &mut [T],
) {
    for k in 0..kmax {
        let a_k = a[offset + k * stride];
        if a_k == T::ZERO {
            continue;
        }
        let b_row = &b[k * cols..(k + 1) * cols];
        for (o, &x) in out_row.iter_mut().zip(b_row) {
            *o += a_k * x;
        }
    }
}

/// Naive i-k-j triple-loop GEMM reference: `A (m×k) · B (k×n)`, flat
/// row-major buffers. The proptests pin every fast kernel bit-identical
/// to this for finite inputs.
pub fn naive_matmul<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut out = vec![T::ZERO; m * n];
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            for j in 0..n {
                out[i * n + j] += aik * b[kk * n + j];
            }
        }
    }
    out
}

/// The seed's scalar kernel, preserved verbatim for the perf baseline:
/// i-k-j loop order with the unconditional zero-skip that this PR removed
/// from the hot path. `hpcnet-serving-bench` measures it next to the fast
/// kernels so `BENCH_serving.json` carries the before/after evidence.
pub fn seed_scalar_matmul<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut out = vec![T::ZERO; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == T::ZERO {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &x) in out_row.iter_mut().zip(b_row) {
                *o += aik * x;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn gemm_row_matches_naive_for_ragged_k() {
        // k = 0, 1, 3, 4, 5, 9: exercises the empty, remainder-only,
        // unroll-only, and mixed cases.
        for k in [0usize, 1, 3, 4, 5, 9] {
            let cols = 5;
            let a = fill(k, |i| (i % 7) as f64 - 3.0);
            let b = fill(k * cols, |i| (i % 5) as f64 - 2.0);
            let mut out = vec![0.0; cols];
            gemm_row(&a, &b, cols, &mut out);
            let reference = naive_matmul(&a, &b, 1, k, cols);
            assert_eq!(out, reference, "k={k}");
        }
    }

    #[test]
    fn zskip_is_bit_identical_on_finite_data() {
        let (k, cols) = (13, 6);
        let a = fill(k, |i| if i % 3 == 0 { 0.0 } else { i as f64 - 6.0 });
        let b = fill(k * cols, |i| (i % 9) as f64 * 0.25 - 1.0);
        let mut fast = vec![0.0; cols];
        let mut skip = vec![0.0; cols];
        gemm_row(&a, &b, cols, &mut fast);
        gemm_row_zskip(&a, &b, cols, &mut skip);
        assert_eq!(fast, skip);
    }

    #[test]
    fn strided_kernel_computes_transpose_product() {
        // out row i of Aᵀ·B via strided reads == row i of naive(Aᵀ, B).
        let (rows, n, cols) = (7, 3, 4);
        let a = fill(rows * n, |i| (i % 11) as f64 - 5.0);
        let b = fill(rows * cols, |i| (i % 5) as f64 - 2.0);
        // Materialized transpose for the reference.
        let mut at = vec![0.0; n * rows];
        for r in 0..rows {
            for c in 0..n {
                at[c * rows + r] = a[r * n + c];
            }
        }
        let reference = naive_matmul(&at, &b, n, rows, cols);
        for i in 0..n {
            let mut out = vec![0.0; cols];
            gemm_row_strided(rows, &a, n, i, &b, cols, &mut out);
            assert_eq!(out, reference[i * cols..(i + 1) * cols], "row {i}");
            let mut out2 = vec![0.0; cols];
            gemm_row_strided_zskip(rows, &a, n, i, &b, cols, &mut out2);
            assert_eq!(out, out2, "zskip row {i}");
        }
    }

    #[test]
    fn probe_classifies_dense_and_sparse() {
        let dense = fill(1000, |i| i as f64 + 1.0);
        assert!(!is_sparse(&dense));
        let sparse = fill(1000, |i| if i % 10 == 0 { 1.0 } else { 0.0 });
        assert!(is_sparse(&sparse));
        // Exactly at the 75% boundary: 3 of 4 samples zero → sparse.
        let edge = vec![0.0, 0.0, 0.0, 1.0];
        assert!(is_sparse(&edge));
        let empty: Vec<f64> = Vec::new();
        assert!(!is_sparse(&empty));
    }

    #[test]
    fn f32_kernels_share_the_code_path() {
        let a: Vec<f32> = vec![1.0, 0.0, -2.0, 4.0, 0.5];
        let b: Vec<f32> = (0..5 * 3).map(|i| (i % 7) as f32 - 3.0).collect();
        let mut out = vec![0.0f32; 3];
        gemm_row(&a, &b, 3, &mut out);
        let reference = naive_matmul(&a, &b, 1, 5, 3);
        assert_eq!(out, reference);
    }

    #[test]
    fn seed_scalar_reference_matches_naive_on_finite_data() {
        let (m, k, n) = (4, 6, 5);
        let a = fill(m * k, |i| {
            if i % 4 == 0 {
                0.0
            } else {
                (i % 9) as f64 - 4.0
            }
        });
        let b = fill(k * n, |i| (i % 7) as f64 - 3.0);
        assert_eq!(
            seed_scalar_matmul(&a, &b, m, k, n),
            naive_matmul(&a, &b, m, k, n)
        );
    }
}
