// hpcnet-kernel: dual-precision
//! Row-major dense `f32` matrices for the opt-in serving path.
//!
//! [`MatrixF32`] is the inference-only sibling of [`crate::Matrix`]:
//! training stays in `f64`, and a registered model is quantized once into
//! this type (DESIGN.md §14). It shares the unrolled kernels in
//! [`crate::kernels`] — same loop structure, half the memory traffic and
//! twice the SIMD lanes — and deliberately omits everything the serving
//! path does not need (no factorizations, no serde: checkpoints remain
//! f64 and quantization is re-derived at registration).

use rayon::prelude::*;

use crate::{kernels, Matrix, Result, TensorError};

/// Row count below which matmul stays serial, matching [`crate::Matrix`].
const PAR_THRESHOLD: usize = 64;

/// A row-major dense `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatrixF32 {
            rows,
            cols,
            data: vec![0.0f32; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch(
                rows * cols,
                data.len(),
                "MatrixF32::from_vec",
            ));
        }
        Ok(MatrixF32 { rows, cols, data })
    }

    /// Quantize an `f64` matrix element-wise (round-to-nearest-even).
    pub fn from_f64(m: &Matrix) -> Self {
        MatrixF32 {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Widen back to an `f64` matrix (exact: every `f32` is an `f64`).
    pub fn to_f64(&self) -> Matrix {
        let data: Vec<f64> = self.data.iter().map(|&v| f64::from(v)).collect();
        match Matrix::from_vec(self.rows, self.cols, data) {
            Ok(m) => m,
            // Unreachable: the buffer length is rows * cols by construction.
            Err(_) => Matrix::zeros(self.rows, self.cols),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Dense matrix product `self * rhs`, same kernel selection and
    /// parallel row-blocking as [`Matrix::matmul`].
    pub fn matmul(&self, rhs: &MatrixF32) -> Result<MatrixF32> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch(
                self.cols,
                rhs.rows,
                "MatrixF32::matmul inner dim",
            ));
        }
        let mut out = MatrixF32::zeros(self.rows, rhs.cols);
        let cols = rhs.cols;
        let k_dim = self.cols;
        if out.data.is_empty() || k_dim == 0 {
            return Ok(out);
        }
        let sparse = kernels::is_sparse(&self.data);
        let kernel = |(out_row, a_row): (&mut [f32], &[f32])| {
            if sparse {
                kernels::gemm_row_zskip(a_row, &rhs.data, cols, out_row);
            } else {
                kernels::gemm_row(a_row, &rhs.data, cols, out_row);
            }
        };
        let work = self.rows * k_dim * cols;
        if self.rows >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(cols)
                .zip(self.data.par_chunks(k_dim))
                .with_min_len(8)
                .for_each(kernel);
        } else if self.rows > 1 && work >= (1 << 20) {
            out.data
                .par_chunks_mut(cols)
                .zip(self.data.par_chunks(k_dim))
                .for_each(kernel);
        } else {
            out.data
                .chunks_mut(cols)
                .zip(self.data.chunks(k_dim))
                .for_each(kernel);
        }
        Ok(out)
    }

    /// Row-vector × matrix product `xᵀ * self` accumulated into `out`
    /// (not cleared), the zero-allocation single-sample forward kernel —
    /// bit-identical to a 1-row [`Self::matmul`].
    pub fn vecmat_into(&self, x: &[f32], out: &mut [f32]) -> Result<()> {
        if x.len() != self.rows {
            return Err(TensorError::ShapeMismatch(
                self.rows,
                x.len(),
                "MatrixF32::vecmat_into input",
            ));
        }
        if out.len() != self.cols {
            return Err(TensorError::ShapeMismatch(
                self.cols,
                out.len(),
                "MatrixF32::vecmat_into output",
            ));
        }
        if kernels::is_sparse(x) {
            kernels::gemm_row_zskip(x, &self.data, self.cols, out);
        } else {
            kernels::gemm_row(x, &self.data, self.cols, out);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_preserves_f32_representable_values() {
        let m = Matrix::from_vec(2, 3, vec![1.0, -2.5, 0.0, 0.25, 4.0, -8.0]).unwrap();
        let q = MatrixF32::from_f64(&m);
        assert_eq!(q.to_f64(), m);
    }

    #[test]
    fn matmul_matches_naive_reference() {
        let n = 70; // above PAR_THRESHOLD: exercises the rayon path
        let a =
            MatrixF32::from_vec(n, n, (0..n * n).map(|i| (i % 7) as f32 - 3.0).collect()).unwrap();
        let b =
            MatrixF32::from_vec(n, n, (0..n * n).map(|i| (i % 5) as f32 - 2.0).collect()).unwrap();
        let c = a.matmul(&b).unwrap();
        let reference = kernels::naive_matmul(a.as_slice(), b.as_slice(), n, n, n);
        assert_eq!(c.as_slice(), &reference[..]);
    }

    #[test]
    fn vecmat_into_matches_one_row_matmul() {
        let w = MatrixF32::from_vec(3, 4, (0..12).map(|i| (i % 7) as f32 - 3.0).collect()).unwrap();
        let x = vec![0.5f32, 0.0, -2.0];
        let mut out = vec![0.0f32; 4];
        w.vecmat_into(&x, &mut out).unwrap();
        let reference = MatrixF32::from_vec(1, 3, x.clone())
            .unwrap()
            .matmul(&w)
            .unwrap();
        assert_eq!(out.as_slice(), reference.as_slice());
        assert!(w.vecmat_into(&x[..2], &mut out).is_err());
        let mut short = vec![0.0f32; 3];
        assert!(w.vecmat_into(&x, &mut short).is_err());
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = MatrixF32::zeros(2, 3);
        let b = MatrixF32::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
        assert!(MatrixF32::from_vec(2, 2, vec![1.0f32; 3]).is_err());
    }
}
