//! Small statistics helpers used by the evaluation harness
//! (speedup aggregation, HitRate, search-efficiency summaries).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Harmonic mean — the aggregation the paper uses for its headline
/// "5.50x average speedup" (harmonic mean across applications).
///
/// Returns 0 for empty input; non-positive entries are rejected with a
/// panic because a harmonic mean over them is meaningless.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "harmonic mean requires positive values"
    );
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Minimum of a slice (NaN-free input assumed); `None` if empty.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum of a slice; `None` if empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Linear-interpolation percentile, `q` in `[0, 1]`.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_matches_paper_style_aggregate() {
        // harmonic mean of {1, 4} is 1.6
        assert!((harmonic_mean(&[1.0, 4.0]) - 1.6).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn harmonic_mean_rejects_nonpositive() {
        harmonic_mean(&[1.0, 0.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn min_max_roundtrip() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(7.0));
    }
}
