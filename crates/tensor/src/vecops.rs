//! Vector kernels shared by solvers, NN backprop, and QoI evaluation.

use rayon::prelude::*;

/// Length above which reductions parallelize.
const PAR_THRESHOLD: usize = 1 << 14;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if lengths differ; in release the shorter length
/// governs (standard `zip` semantics), so callers must pass equal lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if a.len() >= PAR_THRESHOLD {
        a.par_iter().zip(b).map(|(x, y)| x * y).sum()
    } else {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

/// In-place `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `y = x + beta * y` (the CG `p`-update shape).
#[inline]
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Relative L2 error `||a - b|| / ||b||`; falls back to absolute error when
/// `||b||` is (near) zero so the ratio stays meaningful.
pub fn rel_l2_error(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let diff: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let denom = norm2(b);
    if denom < 1e-300 {
        diff
    } else {
        diff / denom
    }
}

/// Element-wise scaling in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Element-wise subtraction `a - b` into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise addition `a + b` into a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_small_and_parallel_agree() {
        let n = PAR_THRESHOLD + 17;
        let a: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let par = dot(&a, &b);
        let ser: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((par - ser).abs() < 1e-6 * ser.abs().max(1.0));
    }

    #[test]
    fn axpy_and_xpby_known_values() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, vec![7.0, 14.0, 21.0]);
    }

    #[test]
    fn norms_of_unit_vectors() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[-7.0, 2.0, 6.5]), 7.0);
    }

    #[test]
    fn rel_error_zero_for_identical() {
        let a = vec![1.0, -2.0, 3.0];
        assert_eq!(rel_l2_error(&a, &a), 0.0);
    }

    #[test]
    fn rel_error_falls_back_to_absolute_for_zero_reference() {
        let a = vec![0.3, 0.4];
        let z = vec![0.0, 0.0];
        assert!((rel_l2_error(&a, &z) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![1.0, 2.0];
        let b = vec![0.5, -0.5];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }
}
