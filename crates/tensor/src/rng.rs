//! Deterministic random generation helpers.
//!
//! Everything in the workspace that samples (problem generators, weight
//! init, Gaussian perturbation for training data, BO candidate draws) goes
//! through seeded [`rand::rngs::StdRng`] instances so experiments replay
//! identically — the paper's checkpoint/restore of a search (§6.1) only
//! makes sense with replayable randomness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sparse::{Coo, Csr};

/// A seeded RNG for a named experiment component.
///
/// Mixing the label into the seed keeps two components with the same base
/// seed from producing correlated streams.
pub fn seeded(base_seed: u64, label: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base_seed;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A vector of i.i.d. standard normal samples (Box–Muller is unnecessary;
/// `rand` lacks a normal distribution without `rand_distr`, so we implement
/// the polar method here to keep the dependency set to the approved list).
pub fn normal_vec(rng: &mut StdRng, len: usize, mean: f64, std: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        // Marsaglia polar method: yields two independent normals per accept.
        let (u, v): (f64, f64) = (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        let s = u * u + v * v;
        if s == 0.0 || s >= 1.0 {
            continue;
        }
        let factor = (-2.0 * s.ln() / s).sqrt();
        out.push(mean + std * u * factor);
        if out.len() < len {
            out.push(mean + std * v * factor);
        }
    }
    out
}

/// One standard normal sample.
pub fn normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    normal_vec(rng, 1, mean, std)[0]
}

/// A vector of uniform samples in `[lo, hi)`.
pub fn uniform_vec(rng: &mut StdRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A random sparse symmetric positive-definite matrix in CSR form.
///
/// Pattern: `bandwidth` random off-diagonals per row, symmetrized, with a
/// diagonal shift that makes the matrix strictly diagonally dominant (hence
/// SPD). This mirrors the NPB CG generator's "random pattern, guaranteed
/// SPD" construction at laptop scale.
pub fn random_spd_csr(rng: &mut StdRng, n: usize, offdiag_per_row: usize) -> Csr {
    random_spd_csr_with_margin(rng, n, offdiag_per_row, 1.0)
}

/// Like [`random_spd_csr`], with a diagonal-dominance `margin` controlling
/// conditioning: the diagonal is `row_abs_sum * (1 + margin) + margin`.
/// Large margins give well-conditioned systems CG solves in a handful of
/// iterations; small margins (e.g. 0.05) give the hundreds-of-iterations
/// behaviour of realistic solver workloads.
pub fn random_spd_csr_with_margin(
    rng: &mut StdRng,
    n: usize,
    offdiag_per_row: usize,
    margin: f64,
) -> Csr {
    assert!(margin > 0.0, "margin must be positive to guarantee SPD");
    let mut coo = Coo::new(n, n);
    let mut row_abs_sum = vec![0.0f64; n];
    for i in 0..n {
        for _ in 0..offdiag_per_row {
            let j = rng.gen_range(0..n);
            if j == i {
                continue;
            }
            let v = rng.gen_range(-1.0..1.0);
            // Symmetrize: add both (i,j) and (j,i). Duplicates merge in CSR
            // conversion, keeping the matrix exactly symmetric.
            coo.push(i, j, v);
            coo.push(j, i, v);
            row_abs_sum[i] += v.abs();
            row_abs_sum[j] += v.abs();
        }
    }
    for (i, item) in row_abs_sum.iter().enumerate().take(n) {
        // Strict dominance: diagonal exceeds the row's off-diagonal mass.
        coo.push(i, i, item * (1.0 + margin) + margin);
    }
    coo.to_csr()
}

/// A random sparse matrix (not necessarily SPD) with a target density.
pub fn random_sparse_csr(rng: &mut StdRng, nrows: usize, ncols: usize, density: f64) -> Csr {
    let mut coo = Coo::new(nrows, ncols);
    let target = ((nrows * ncols) as f64 * density).round() as usize;
    for _ in 0..target {
        let r = rng.gen_range(0..nrows);
        let c = rng.gen_range(0..ncols);
        coo.push(r, c, rng.gen_range(-1.0..1.0));
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    #[test]
    fn seeded_is_deterministic_and_label_sensitive() {
        let a: f64 = seeded(42, "x").gen();
        let b: f64 = seeded(42, "x").gen();
        let c: f64 = seeded(42, "y").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_vec_has_roughly_right_moments() {
        let mut rng = seeded(7, "normal");
        let v = normal_vec(&mut rng, 20_000, 2.0, 3.0);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn random_spd_is_symmetric_and_solvable() {
        let mut rng = seeded(3, "spd");
        let a = random_spd_csr(&mut rng, 40, 3);
        let d = a.to_dense();
        for i in 0..40 {
            for j in 0..40 {
                assert!((d.at(i, j) - d.at(j, i)).abs() < 1e-12);
            }
        }
        // SPD => Cholesky succeeds and solve recovers a known solution.
        let x_true: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let b = a.spmv(&x_true).unwrap();
        let x = d.solve_spd(&b, 0.0).unwrap();
        assert!(vecops::rel_l2_error(&x, &x_true) < 1e-8);
    }

    #[test]
    fn random_sparse_density_is_approximate() {
        let mut rng = seeded(11, "sparse");
        let m = random_sparse_csr(&mut rng, 100, 100, 0.05);
        // Collisions and duplicate merging make nnz <= target.
        assert!(m.nnz() <= 500);
        assert!(m.nnz() > 350);
    }
}
