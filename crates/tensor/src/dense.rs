//! Row-major dense matrices and the kernels the NN and GP substrates use.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{kernels, Result, TensorError};

/// Row count below which matmul/matvec stay serial; parallelism overhead
/// dominates for the small layers typical of surrogate models.
const PAR_THRESHOLD: usize = 64;

/// A row-major dense `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch(
                rows * cols,
                data.len(),
                "Matrix::from_vec",
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested rows. All rows must share one length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(TensorError::ShapeMismatch(
                    ncols,
                    r.len(),
                    "Matrix::from_rows",
                ));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor (`i` row, `j` column).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out into a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.at(i, j)).collect()
    }

    /// Matrix transpose, cache-blocked so both the read and write streams
    /// stay within a few cache lines per tile even for large matrices.
    pub fn transpose(&self) -> Matrix {
        const BLOCK: usize = 32;
        let mut t = Matrix::zeros(self.cols, self.rows);
        for ib in (0..self.rows).step_by(BLOCK) {
            let imax = (ib + BLOCK).min(self.rows);
            for jb in (0..self.cols).step_by(BLOCK) {
                let jmax = (jb + BLOCK).min(self.cols);
                for i in ib..imax {
                    for j in jb..jmax {
                        t.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        t
    }

    /// Dense matrix product `self * rhs`, parallelized over output rows
    /// when the problem is large enough to amortize the fork-join cost.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch(
                self.cols,
                rhs.rows,
                "matmul inner dim",
            ));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let cols = rhs.cols;
        let k_dim = self.cols;
        // Degenerate shapes (0 rows, 0 cols, or an empty inner dim) have
        // an all-zero product; returning early keeps `chunks(0)` out of
        // the kernel dispatch below.
        if out.data.is_empty() || k_dim == 0 {
            return Ok(out);
        }
        // One density probe for the whole left operand: every row takes
        // the same kernel, and because the probe is a pure function of
        // `self.data`, a 1-row matmul agrees with `vecmat_into` over the
        // same buffer (their cross-path test is `assert_eq!`).
        let sparse = kernels::is_sparse(&self.data);
        let kernel = |(out_row, a_row): (&mut [f64], &[f64])| {
            // i-k-j loop order keeps both `rhs` and `out_row` accesses
            // sequential; the branchless unrolled kernel is what lets
            // LLVM vectorize the inner loop (DESIGN.md §14).
            if sparse {
                kernels::gemm_row_zskip(a_row, &rhs.data, cols, out_row);
            } else {
                kernels::gemm_row(a_row, &rhs.data, cols, out_row);
            }
        };
        // Parallelize when either many rows or enough total work per row
        // exists to amortize the fork-join (wide-layer NN training hits
        // the second case with small batches). For row-rich batches (the
        // orchestrator coalesces up to 512 rows) a minimum block of 8
        // rows per rayon task keeps splitting overhead off the profile;
        // the work-driven case keeps single-row granularity.
        let work = self.rows * k_dim * cols;
        if self.rows >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(cols)
                .zip(self.data.par_chunks(k_dim))
                .with_min_len(8)
                .for_each(kernel);
        } else if self.rows > 1 && work >= (1 << 20) {
            out.data
                .par_chunks_mut(cols)
                .zip(self.data.par_chunks(k_dim))
                .for_each(kernel);
        } else {
            out.data
                .chunks_mut(cols)
                .zip(self.data.chunks(k_dim))
                .for_each(kernel);
        }
        Ok(out)
    }

    /// Fused transpose-matmul `selfᵀ * rhs` without materializing the
    /// transpose (the backprop weight-gradient kernel `Xᵀ·dZ`).
    ///
    /// Each output element accumulates over `k` in increasing order, the
    /// same rounding sequence as [`Self::matmul`], so the result is
    /// bit-identical to `self.transpose().matmul(rhs)` for finite inputs
    /// while skipping the transpose copy. (The density probes sample
    /// `self.data` and its transpose in different orders and may pick
    /// different kernels near the sparsity threshold; for finite values
    /// the kernels agree bitwise, see `kernels`.)
    pub fn at_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(TensorError::ShapeMismatch(
                self.rows,
                rhs.rows,
                "at_matmul inner dim",
            ));
        }
        let n = self.cols;
        let cols = rhs.cols;
        let kmax = self.rows;
        let mut out = Matrix::zeros(n, cols);
        if out.data.is_empty() || kmax == 0 {
            return Ok(out);
        }
        let sparse = kernels::is_sparse(&self.data);
        // One output row per column of `self`; the strided gathers of
        // `self` are amortized by the sequential sweeps of `rhs`/`out`.
        let kernel = |(i, out_row): (usize, &mut [f64])| {
            if sparse {
                kernels::gemm_row_strided_zskip(kmax, &self.data, n, i, &rhs.data, cols, out_row);
            } else {
                kernels::gemm_row_strided(kmax, &self.data, n, i, &rhs.data, cols, out_row);
            }
        };
        if n >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(cols)
                .enumerate()
                .with_min_len(8)
                .for_each(kernel);
        } else {
            out.data.chunks_mut(cols).enumerate().for_each(kernel);
        }
        Ok(out)
    }

    /// Row-vector × matrix product `xᵀ * self`, accumulated into a
    /// caller-provided buffer — the zero-allocation single-sample forward
    /// kernel. `out` is **not** cleared; callers zero it first.
    ///
    /// This is exactly the per-row kernel of [`Self::matmul`], so a
    /// single-sample forward through it is bit-identical to a 1-row batch.
    pub fn vecmat_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.rows {
            return Err(TensorError::ShapeMismatch(
                self.rows,
                x.len(),
                "vecmat_into input",
            ));
        }
        if out.len() != self.cols {
            return Err(TensorError::ShapeMismatch(
                self.cols,
                out.len(),
                "vecmat_into output",
            ));
        }
        // Probing `x` here is probing the 1-row matmul's left operand, so
        // both call sites pick the same kernel for the same logical data.
        if kernels::is_sparse(x) {
            kernels::gemm_row_zskip(x, &self.data, self.cols, out);
        } else {
            kernels::gemm_row(x, &self.data, self.cols, out);
        }
        Ok(())
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.cols != x.len() {
            return Err(TensorError::ShapeMismatch(self.cols, x.len(), "matvec"));
        }
        let dot = |row: &[f64]| row.iter().zip(x).map(|(a, b)| a * b).sum();
        let out = if self.rows >= PAR_THRESHOLD {
            self.data.par_chunks(self.cols).map(dot).collect()
        } else {
            self.data.chunks(self.cols).map(dot).collect()
        };
        Ok(out)
    }

    /// Transposed matrix-vector product `selfᵀ * x` without materializing
    /// the transpose (used by backprop).
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.rows != x.len() {
            return Err(TensorError::ShapeMismatch(self.rows, x.len(), "matvec_t"));
        }
        let mut out = vec![0.0; self.cols];
        for (row, &xi) in self.data.chunks(self.cols).zip(x) {
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * xi;
            }
        }
        Ok(out)
    }

    /// Element-wise in-place `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) -> Result<()> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch(
                self.data.len(),
                rhs.data.len(),
                "Matrix::axpy",
            ));
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiply every element by `s` in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Cholesky factorization `self = L Lᵀ` for a symmetric positive-definite
    /// matrix. Returns the lower-triangular factor.
    ///
    /// `jitter` is added to the diagonal before factorization; Gaussian-
    /// process kernels routinely need this to stay PD in floating point.
    pub fn cholesky(&self, jitter: f64) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(TensorError::NotSquare(self.rows, self.cols));
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.at(i, j);
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l.at(i, k) * l.at(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(TensorError::Numerical(
                            "Cholesky: matrix not positive definite",
                        ));
                    }
                    *l.at_mut(i, j) = sum.sqrt();
                } else {
                    *l.at_mut(i, j) = sum / l.at(j, j);
                }
            }
        }
        Ok(l)
    }

    /// Solve `L y = b` for lower-triangular `L` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.rows != b.len() {
            return Err(TensorError::ShapeMismatch(
                self.rows,
                b.len(),
                "solve_lower",
            ));
        }
        let n = self.rows;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.at(i, k) * y[k];
            }
            let d = self.at(i, i);
            if d == 0.0 {
                return Err(TensorError::Numerical("solve_lower: zero diagonal"));
            }
            y[i] = sum / d;
        }
        Ok(y)
    }

    /// Solve `Lᵀ x = y` for lower-triangular `L` (backward substitution on
    /// the implicit transpose).
    pub fn solve_lower_t(&self, y: &[f64]) -> Result<Vec<f64>> {
        if self.rows != y.len() {
            return Err(TensorError::ShapeMismatch(
                self.rows,
                y.len(),
                "solve_lower_t",
            ));
        }
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.at(k, i) * x[k];
            }
            let d = self.at(i, i);
            if d == 0.0 {
                return Err(TensorError::Numerical("solve_lower_t: zero diagonal"));
            }
            x[i] = sum / d;
        }
        Ok(x)
    }

    /// Solve the SPD system `self * x = b` via Cholesky.
    pub fn solve_spd(&self, b: &[f64], jitter: f64) -> Result<Vec<f64>> {
        let l = self.cholesky(jitter)?;
        let y = l.solve_lower(b)?;
        l.solve_lower_t(&y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(5);
        let x = vec![1.0, -2.0, 3.5, 0.0, 7.0];
        assert_eq!(m.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matmul_small_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn parallel_matmul_matches_serial_path() {
        // Above PAR_THRESHOLD rows the rayon path is used; check it against
        // a naive triple loop.
        let n = 80;
        let a = Matrix::from_vec(n, n, (0..n * n).map(|i| (i % 7) as f64 - 3.0).collect()).unwrap();
        let b = Matrix::from_vec(n, n, (0..n * n).map(|i| (i % 5) as f64 - 2.0).collect()).unwrap();
        let c = a.matmul(&b).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a.at(i, k) * b.at(k, j);
                }
                assert!(approx_eq(c.at(i, j), s), "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn blocked_transpose_matches_naive_across_block_boundaries() {
        // Sizes straddling the 32-wide tile: ragged edges on both axes.
        for &(r, c) in &[(1usize, 1usize), (7, 45), (33, 31), (64, 70), (100, 3)] {
            let a = Matrix::from_vec(r, c, (0..r * c).map(|i| (i % 13) as f64 - 6.0).collect())
                .unwrap();
            let t = a.transpose();
            assert_eq!(t.rows(), c);
            assert_eq!(t.cols(), r);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t.at(j, i), a.at(i, j), "({i},{j}) in {r}x{c}");
                }
            }
        }
    }

    #[test]
    fn at_matmul_is_bit_identical_to_transpose_then_matmul() {
        // Both below and above PAR_THRESHOLD columns, with zeros sprinkled
        // in to exercise the skip path.
        for &(r, c, rc) in &[(3usize, 4usize, 2usize), (17, 80, 9), (70, 70, 5)] {
            let a = Matrix::from_vec(
                r,
                c,
                (0..r * c)
                    .map(|i| {
                        if i % 7 == 0 {
                            0.0
                        } else {
                            (i % 11) as f64 - 5.0
                        }
                    })
                    .collect(),
            )
            .unwrap();
            let b = Matrix::from_vec(r, rc, (0..r * rc).map(|i| (i % 5) as f64 - 2.0).collect())
                .unwrap();
            let fused = a.at_matmul(&b).unwrap();
            let reference = a.transpose().matmul(&b).unwrap();
            assert_eq!(fused, reference, "{r}x{c} ᵀ· {r}x{rc}");
        }
    }

    #[test]
    fn at_matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(4, 2);
        assert!(a.at_matmul(&b).is_err());
    }

    #[test]
    fn vecmat_into_matches_one_row_matmul() {
        let w = Matrix::from_vec(3, 4, (0..12).map(|i| (i % 7) as f64 - 3.0).collect()).unwrap();
        let x = vec![0.5, 0.0, -2.0];
        let mut out = vec![0.0; 4];
        w.vecmat_into(&x, &mut out).unwrap();
        let reference = Matrix::from_vec(1, 3, x.clone())
            .unwrap()
            .matmul(&w)
            .unwrap();
        assert_eq!(out.as_slice(), reference.as_slice());
        // Shape guards.
        assert!(w.vecmat_into(&x[..2], &mut out).is_err());
        let mut short = vec![0.0; 3];
        assert!(w.vecmat_into(&x, &mut short).is_err());
    }

    #[test]
    fn matvec_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let x = vec![1.0, -1.0, 2.0];
        let via_t = a.transpose().matvec(&x).unwrap();
        let direct = a.matvec_t(&x).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix() {
        // A = M Mᵀ + n·I is SPD.
        let m = Matrix::from_vec(3, 3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]).unwrap();
        let a = {
            let mut mm = m.matmul(&m.transpose()).unwrap();
            for i in 0..3 {
                *mm.at_mut(i, i) += 3.0;
            }
            mm
        };
        let l = a.cholesky(0.0).unwrap();
        let rec = l.matmul(&l.transpose()).unwrap();
        for (x, y) in rec.as_slice().iter().zip(a.as_slice()) {
            assert!(approx_eq(*x, *y));
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(a.cholesky(0.0).is_err());
    }

    #[test]
    fn solve_spd_recovers_known_solution() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.0, 1.0, 5.0, 2.0, 0.0, 2.0, 6.0]).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve_spd(&b, 0.0).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!(approx_eq(*u, *v));
        }
    }

    #[test]
    fn axpy_adds_scaled_matrix() {
        let mut a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[6.0, 12.0, 18.0, 24.0]);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!(approx_eq(Matrix::identity(9).frobenius_norm(), 3.0));
    }
}
