//! Listing-2-style deployment: spin up the orchestrator ("database"),
//! load a pre-trained surrogate from its serialized form, and let an
//! application loop request inferences through the client — the
//! SmartSim/RedisAI usage pattern of paper §6.3, here driving the AMG
//! linear-solver region (the paper's power-grid/Smart-PGSim lineage).
//!
//! ```text
//! cargo run --release -p auto-hpcnet --example power_grid
//! ```

use auto_hpcnet::config::PipelineConfig;
use auto_hpcnet::pipeline::AutoHpcnet;
use hpcnet_apps::{AmgApp, HpcApp};
use hpcnet_runtime::{Client, Orchestrator, TensorStore};

fn main() {
    // Offline (done once, possibly on another machine): build and save.
    let app = AmgApp::default();
    println!("training the AMG surrogate offline ...");
    let mut cfg = PipelineConfig::quick();
    cfg.mu = 0.10;
    cfg.search.k_bounds = (8, 32);
    let surrogate = match AutoHpcnet::new(cfg.clone()).build_surrogate(&app) {
        Ok(s) => s,
        Err(_) => {
            // Relax once if the strict bound is infeasible at quick budgets.
            cfg.mu = 0.30;
            AutoHpcnet::new(cfg)
                .build_surrogate(&app)
                .expect("relaxed build succeeds")
        }
    };
    let saved_net = surrogate.bundle.to_json(); // "./saved_net.pt" analog
    println!(
        "saved bundle: {} bytes of JSON (K = {}, topology {:?})",
        saved_net.len(),
        surrogate.k,
        surrogate.topology.widths
    );

    // --- Listing 2: create and start a database ---
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(2)
        .queue_depth(64)
        .build();

    // --- load a pretrained model from file, behind a quality guard:
    //     the orchestrator itself restarts the original region when the
    //     surrogate answer fails the residual-style sanity check ---
    orc.register_model_from_json("AI-CFD-net", &saved_net)
        .expect("bundle loads");
    let guard_app = AmgApp::default();
    orc.set_quality_guard(
        "AI-CFD-net",
        hpcnet_runtime::QualityGuard::new(|_, y| y.iter().all(|v| v.is_finite()))
            .with_fallback(move |raw| guard_app.run_region_exact(raw)),
    )
    .expect("model is registered");

    // --- the application loop: put → run → unpack ---
    let client = Client::connect(&orc);
    let mut worst_rel = 0.0f64;
    for step in 0..8 {
        let x = app.gen_problem(4_000 + step);
        // Feature reduction and format transformation happen server-side:
        // the client ships the CSR row, never the dense unrolling.
        let sparse_tensor = app.sparse_row(&x).expect("AMG inputs are sparse");
        client
            .put_sparse_tensor("input_feature", sparse_tensor)
            .expect("store accepts the tensor");
        client
            .run_model("AI-CFD-net", "input_feature", "output_tensor")
            .expect("inference");
        let y_pred = client.unpack_tensor("output_tensor").expect("output");

        let y_exact = app.run_region_exact(&x);
        let v_pred = app.qoi(&x, &y_pred);
        let v_exact = app.qoi(&x, &y_exact);
        let rel = (v_pred - v_exact).abs() / v_exact.abs().max(1e-12);
        worst_rel = worst_rel.max(rel);
        println!(
            "step {step}: QoI surrogate {v_pred:.4} vs exact {v_exact:.4} (rel err {:.2}%)",
            100.0 * rel
        );
    }
    let p = orc.online_timers().percentages();
    println!(
        "\nonline split: fetch {:.1}%  encode {:.1}%  load {:.1}%  infer {:.1}%  (paper: 21.2/10.1/1.6/67.1)",
        p[0], p[1], p[2], p[3]
    );
    println!(
        "worst relative QoI error over the run: {:.2}%",
        100.0 * worst_rel
    );
}
