//! Quickstart: the complete Auto-HPCnet workflow on the paper's Algorithm 1
//! PCG kernel, expressed in the mini-IR — annotate, trace, identify I/O,
//! collect samples, search, deploy, and invoke through the client API.
//!
//! ```text
//! cargo run --release -p auto-hpcnet --example quickstart
//! ```

use auto_hpcnet::acquisition::acquire;
use hpcnet_nas::{ModelConfig, NasTask, SearchConfig, TwoDNas};
use hpcnet_runtime::{Client, ClientApi, ModelBundle, Orchestrator, TensorStore};
use hpcnet_tensor::Matrix;
use hpcnet_trace::{kernels, PerturbSpec};

/// Listing 1's invocation flow, written against the transport-agnostic
/// [`ClientApi`]: the identical code drives the in-process [`Client`]
/// here and `hpcnet-net`'s `RemoteClient` in the remote quickstart
/// (`examples/remote_quickstart.rs`).
fn invoke_surrogate<C: ClientApi>(client: &C, model: &str, input: &[f64]) -> Vec<f64> {
    client
        .put_tensor("in_key", input)
        .expect("valid key and admitting");
    client
        .run_model(model, "in_key", "out_key")
        .expect("inference");
    client.unpack_tensor("out_key").expect("output present")
}

fn main() {
    // ---------------------------------------------------------------
    // 1. Feature acquisition (paper §3): the user annotated the PCG
    //    iteration as the region; Auto-HPCnet traces it, builds the
    //    DDDG, and identifies inputs/outputs automatically.
    // ---------------------------------------------------------------
    let kernel = kernels::pcg_iteration(4);
    let data = acquire(
        &kernel.program,
        kernel.setup,
        400,
        PerturbSpec {
            mean: 0.0,
            std: 0.05,
        },
        &[],
        2024,
    )
    .expect("acquisition succeeds");

    println!("identified region signature:");
    for f in &data.signature.inputs {
        println!("  input  {:<4} width {}", f.name, f.width());
    }
    for f in &data.signature.outputs {
        println!("  output {:<4} width {}", f.name, f.width());
    }
    println!(
        "trace: {:.1} ms, {} DDDG edges; {} samples in {:.1} ms",
        data.trace_seconds * 1e3,
        data.dddg.edges.len(),
        data.samples.len(),
        data.sample_seconds * 1e3,
    );

    // ---------------------------------------------------------------
    // 2. 2D neural architecture search (paper §5): the outer Bayesian
    //    loop picks the reduced feature count K (training a customized
    //    autoencoder per candidate), the inner loop picks the topology.
    // ---------------------------------------------------------------
    let x = Matrix::from_rows(&data.samples.inputs).expect("rectangular");
    let y = Matrix::from_rows(&data.samples.outputs).expect("rectangular");
    let task = NasTask {
        quality: Box::new(NasTask::holdout_quality(x.clone(), y.clone(), 60)),
        inputs: x.clone(),
        sparse_inputs: None,
        outputs: y,
    };
    let search = SearchConfig {
        outer_budget: 3,
        inner_budget: 4,
        bayesian_init: 2,
        quality_loss: 0.15,
        k_bounds: (3, 16),
        ..SearchConfig::default()
    };
    let outcome = TwoDNas::new(search, ModelConfig::default())
        .search(&task)
        .expect("search finds a feasible surrogate");
    println!(
        "\n2D NAS selected K = {} (of {} raw features), topology {:?}",
        outcome.k,
        data.signature.input_width(),
        outcome.topology.widths
    );
    println!(
        "f_e = {:.4} (quality), f_c = {:.0} FLOPs/inference, {} candidates evaluated",
        outcome.f_e,
        outcome.f_c,
        outcome.history.len()
    );

    // ---------------------------------------------------------------
    // 3. Deployment (paper §6.3 / Listing 1): register with the
    //    orchestrator and request an inference from the "application".
    // ---------------------------------------------------------------
    let orchestrator = Orchestrator::builder()
        .store(TensorStore::new())
        .queue_depth(256)
        .default_deadline(std::time::Duration::from_secs(5))
        .build();
    orchestrator.register_model(
        "AI-PCG-net",
        ModelBundle {
            surrogate: outcome.surrogate,
            autoencoder: outcome.autoencoder,
            scaler: Some(outcome.scaler),
            output_scaler: Some(outcome.output_scaler),
        },
    );
    let client = Client::connect(&orchestrator);
    let prediction = invoke_surrogate(&client, "AI-PCG-net", x.row(0));
    println!(
        "\nsurrogate prediction for sample 0 (first 5 of {} outputs): {:?}",
        prediction.len(),
        &prediction[..5.min(prediction.len())]
    );
    let timers = orchestrator.online_timers();
    let p = timers.percentages();
    println!(
        "online split: fetch {:.1}%  encode {:.1}%  load {:.1}%  infer {:.1}%",
        p[0], p[1], p[2], p[3]
    );

    // Telemetry: every orchestrator exports its registry as Prometheus
    // text — counters, queue-wait, and per-stage latency histograms.
    println!("\nmetrics excerpt:");
    for line in orchestrator
        .metrics_text()
        .lines()
        .filter(|l| !l.contains("_bucket"))
        .take(12)
    {
        println!("  {line}");
    }

    // Graceful drain: in-flight requests finish, then the pool joins.
    let stats = orchestrator.shutdown();
    println!(
        "drained: {} request(s), {} batch(es), {} error(s)",
        stats.requests, stats.batches, stats.errors
    );
}
