//! CG surrogate: the sparse-input flagship scenario — replace an NPB-style
//! conjugate-gradient solver with a surrogate whose autoencoder consumes
//! the CSR input directly (paper §4), then measure Eqn 2 speedup and
//! Eqn 3 HitRate with and without restart-on-miss.
//!
//! ```text
//! cargo run --release -p auto-hpcnet --example cg_surrogate
//! ```

use auto_hpcnet::config::PipelineConfig;
use auto_hpcnet::evaluate::evaluate;
use auto_hpcnet::pipeline::AutoHpcnet;
use hpcnet_apps::{CgApp, HpcApp};
use hpcnet_runtime::{Orchestrator, TensorStore};

fn main() {
    let app = CgApp::default();
    println!(
        "application: {} — region `{}`, QoI `{}`",
        app.name(),
        app.region_name(),
        app.qoi_name()
    );
    let x0 = app.gen_problem(0);
    let row = app.sparse_row(&x0).expect("CG inputs are sparse");
    println!(
        "input: {} raw features; CSR stores {} non-zeros (density {:.1}%, {}x dense blow-up avoided)",
        app.input_dim(),
        row.nnz(),
        100.0 * row.density(),
        app.input_dim() / row.nnz().max(1),
    );

    let mut cfg = PipelineConfig::quick();
    cfg.search.k_bounds = (8, 32);
    let framework = AutoHpcnet::new(cfg);
    println!("\nbuilding the surrogate (labeling + autoencoder + 2D NAS) ...");
    let surrogate = framework.build_surrogate(&app).expect("pipeline succeeds");
    println!(
        "selected K = {} of {} features, topology {:?}, f_e = {:.4}",
        surrogate.k,
        app.input_dim(),
        surrogate.topology.widths,
        surrogate.f_e
    );
    println!(
        "offline: labeling {:.2}s, autoencoders {:.2}s, search {:.2}s",
        surrogate.offline.labeling_s, surrogate.offline.autoencoder_s, surrogate.offline.search_s
    );

    for restart in [false, true] {
        let eval = evaluate(&app, &surrogate, 60, 0.10, restart).expect("evaluation runs");
        println!(
            "\n[restart={restart}] speedup {:.2}x (GPU-modeled {:.2}x)  hit-rate {:.1}%  restarts {}",
            eval.speedup,
            eval.gpu_speedup_modeled,
            100.0 * eval.hit_rate,
            eval.restarts
        );
        println!(
            "  T_solver {:.1} ms  T_infer {:.1} ms  T_load {:.1} ms  T_other {:.1} ms",
            eval.t_solver * 1e3,
            eval.t_infer * 1e3,
            eval.t_load * 1e3,
            eval.t_other * 1e3
        );
    }

    // Serve the same surrogate behind the orchestrator with a server-side
    // quality guard: the runtime itself validates every answer and
    // restarts the original CG region on a miss (paper §7.1/§8), so the
    // client never sees an unvalidated output.
    println!("\nserving the CG surrogate with a server-side quality guard ...");
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(2)
        .queue_depth(128)
        .build();
    let fallback_app = CgApp::default();
    surrogate.deploy_guarded(
        &orc,
        "AI-CG-net",
        |_, y| y.iter().all(|v| v.is_finite()),
        move |raw| fallback_app.run_region_exact(raw),
    );
    let client = orc.client();
    for i in 0..10u64 {
        let x = app.gen_problem(50_000 + i);
        let row = app.sparse_row(&x).expect("CG inputs are sparse");
        client
            .put_sparse_tensor("cg_in", row)
            .expect("store accepts the row");
        client
            .run_model("AI-CG-net", "cg_in", "cg_out")
            .expect("guarded inference");
    }
    // The registry snapshot exposes the same run as distributions: how
    // long requests waited, where stage time went, and which anomalies
    // (quality fallbacks here) the event ring retained.
    let snap = orc.metrics_snapshot();
    if let Some(infer) = snap.find_histogram(
        "hpcnet_serving_stage_seconds",
        &[("model", "AI-CG-net"), ("stage", "infer")],
    ) {
        println!(
            "infer stage over {} request(s): p50 {:.1} us, p99 {:.1} us",
            infer.count,
            infer.p50 as f64 / 1e3,
            infer.p99 as f64 / 1e3
        );
    }
    let fallbacks = snap.events_of_kind("quality_fallback").len();
    println!("event ring retained {fallbacks} quality-fallback event(s)");

    // The offline pipeline recorded into the process-wide registry too.
    let offline = hpcnet_telemetry::global().snapshot();
    println!(
        "offline: {} sample(s) labeled, {} NAS candidate(s), {} training epoch(s)",
        offline.counter_total("hpcnet_offline_samples_total"),
        offline.counter_total("hpcnet_nas_candidates_total"),
        offline.counter_total("hpcnet_train_epochs_total")
    );

    let stats = orc.shutdown();
    println!(
        "served {} request(s): {} validated hit(s), {} server-side restart(s)",
        stats.requests, stats.quality_hits, stats.quality_fallbacks
    );
}
