//! Online retraining quickstart (DESIGN.md §17): serve a deliberately
//! weak surrogate behind a quality guard, let the guard's fallbacks feed
//! the replay buffer, fine-tune in place, and hot-swap the improved
//! candidate — all without a restart or a failed request.
//!
//! ```text
//! cargo run --release -p hpcnet-runtime --example retrain_quickstart
//! ```
//!
//! The CI `retrain-smoke` job runs this binary and asserts on the final
//! `PASS` line and the `hpcnet_retrain_swaps_total` counter it prints.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use hpcnet_nn::train::Preprocessing;
use hpcnet_nn::{Mlp, SurrogateNet, Topology, TrainConfig, Trainer};
use hpcnet_runtime::{
    ClientApi, ModelBundle, Orchestrator, QualityGuard, RetrainConfig, TensorStore,
};
use hpcnet_tensor::Matrix;

const MODEL: &str = "AI-retrain-net";
const TOLERANCE: f64 = 0.25;

/// The "original code region": the exact answer the surrogate imitates.
fn exact(x: &[f64]) -> Vec<f64> {
    vec![1.0 + 0.5 * x[0] - 0.25 * x[1] + 0.1 * x[2]]
}

fn probe_input(i: u64) -> Vec<f64> {
    let t = i as f64;
    vec![(t * 0.37).sin(), (t * 0.61).cos(), (t * 0.17).sin()]
}

/// A surrogate trained on *wrong* labels (constant zero), so every
/// guarded answer misses and falls back to the exact region.
fn weak_bundle() -> ModelBundle {
    let mut rng = hpcnet_tensor::rng::seeded(11, "retrain-demo");
    let mut mlp = Mlp::new(&Topology::mlp(vec![3, 8, 1]), &mut rng).expect("topology");
    let xs: Vec<Vec<f64>> = (0..64).map(probe_input).collect();
    let zeros = vec![vec![0.0]; xs.len()];
    let x = Matrix::from_rows(&xs).expect("matrix");
    let y = Matrix::from_rows(&zeros).expect("matrix");
    Trainer::new(TrainConfig {
        epochs: 80,
        lr: 1e-2,
        train_ratio: 1.0,
        preprocessing: Preprocessing::None,
        patience: 0,
        ..TrainConfig::default()
    })
    .fit(&mut mlp, &x, &y)
    .expect("weak pre-training");
    ModelBundle {
        surrogate: SurrogateNet::from(mlp),
        autoencoder: None,
        scaler: None,
        output_scaler: None,
    }
}

/// Drive `n` guarded requests; every one must succeed (a fallback is an
/// answer, not an error). Returns the fallback count observed.
fn drive(orc: &Orchestrator, offset: u64, n: u64) -> u64 {
    let client = orc.client();
    let before = orc.serving_stats().quality_fallbacks;
    for i in 0..n {
        let in_key = format!("rt/in{}", offset + i);
        let out_key = format!("rt/out{}", offset + i);
        client
            .put_tensor(&in_key, &probe_input(offset + i))
            .expect("put");
        client.run_model(MODEL, &in_key, &out_key).expect("run");
        let y = client.unpack_tensor(&out_key).expect("unpack");
        assert_eq!(y.len(), 1, "guarded answers keep the output shape");
    }
    orc.serving_stats().quality_fallbacks - before
}

fn metric_total(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(name))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

fn main() {
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(2)
        .online_retraining(RetrainConfig {
            min_samples: 32,
            min_interval: Duration::ZERO,
            epochs: 400,
            lr: 1e-2,
            batch_size: 16,
            probation_window: 32,
            ..RetrainConfig::default()
        })
        .build();
    let guard = QualityGuard::new(|x, y| (y[0] - exact(x)[0]).abs() <= TOLERANCE)
        .with_fallback(|x| exact(x));
    orc.register_guarded_model(MODEL, weak_bundle(), guard);
    println!(
        "registered `{MODEL}` v{} — weak on purpose (pre-trained on zeros)",
        orc.model_versions()[MODEL]
    );

    // Phase 1: the guard rejects (nearly) everything; each fallback is
    // answered by the exact region and captured into the replay buffer.
    const PHASE: u64 = 64;
    let before = drive(&orc, 0, PHASE);
    println!(
        "phase 1: {before}/{PHASE} fallbacks, {} replay sample(s) buffered",
        orc.replay_buffered(MODEL)
    );

    // The background thread retrains on its own tick; for a deterministic
    // demo we trigger the same pass directly.
    orc.retrain_now();
    let version = orc.model_versions()[MODEL];
    println!("after retrain: `{MODEL}` serves v{version}");

    // Phase 2: the hot-swapped candidate was fine-tuned on the exact
    // region's own answers, so the guard now accepts most outputs.
    let after = drive(&orc, PHASE, PHASE);
    println!("phase 2: {after}/{PHASE} fallbacks");

    let text = orc.metrics_text();
    let swaps = metric_total(&text, "hpcnet_retrain_swaps_total");
    let rollbacks = metric_total(&text, "hpcnet_retrain_rollbacks_total");
    println!(
        "counters: retrain_samples {} retrain_runs {} retrain_swaps {swaps} retrain_rollbacks {rollbacks}",
        metric_total(&text, "hpcnet_retrain_samples_total"),
        metric_total(&text, "hpcnet_retrain_runs_total"),
    );
    // The same versions surface uniformly through the ClientApi trait on
    // every transport (in-process here; TCP and cluster clients match).
    let client = orc.client();
    let versions = client.model_versions().expect("versions");
    println!("client-visible versions: {versions:?}");

    let stats = orc.shutdown();
    let ok = swaps >= 1.0 && version >= 2 && after < before;
    println!(
        "served {} request(s), 0 failures; fallbacks {} -> {} after hot-swap",
        stats.requests, before, after
    );
    println!("{}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
}
