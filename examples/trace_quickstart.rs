//! Trace quickstart: one request, one distributed span tree.
//!
//! Drives a few requests (including one that fails) through a
//! [`RemoteClient`], then fetches the merged flight-recorder contents
//! with [`ClientApi::trace_dump`] and prints each retained trace as an
//! indented span tree. Every request shows up as a single trace whose
//! root span was recorded by the client and whose `request`/stage spans
//! were recorded by the server — stitched by the trace context the
//! client sent on the wire (DESIGN.md §16).
//!
//! Two modes:
//!
//! * default — self-contained: starts a [`NetServer`] with the demo
//!   model on an ephemeral loopback port;
//! * `HPCNET_ADDR=host:port` — connects to an already-running
//!   `hpcnet-serve --demo`, exercising the trace dump across real
//!   process boundaries (this is what CI's trace-smoke job does).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use hpcnet_net::{demo_bundle, demo_input, NetServer, RemoteClient, DEMO_MODEL};
use hpcnet_runtime::{ClientApi, Orchestrator, TensorStore};
use hpcnet_telemetry::{SpanId, SpanStatus, Trace};

/// Print the spans hanging under `parent`, depth-first.
fn print_subtree(trace: &Trace, parent: Option<SpanId>, indent: usize) {
    for span in trace.spans.iter().filter(|s| s.parent == parent) {
        let status = match &span.status {
            SpanStatus::Ok => String::new(),
            SpanStatus::Error(msg) => format!("  ERROR: {msg}"),
        };
        let notes: Vec<String> = span
            .annotations
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!(
            "{:indent$}{} [{}] {:.3} ms  {}{status}",
            "",
            span.name,
            span.service,
            span.duration_nanos as f64 / 1e6,
            notes.join(" "),
        );
        print_subtree(trace, Some(span.span_id), indent + 2);
    }
}

fn main() {
    let (addr, local_server) = match std::env::var("HPCNET_ADDR") {
        Ok(addr) => {
            println!("connecting to external server at {addr}");
            (addr, None)
        }
        Err(_) => {
            let orchestrator = Orchestrator::builder().store(TensorStore::new()).build();
            orchestrator.register_model(DEMO_MODEL, demo_bundle());
            let server = NetServer::builder(orchestrator)
                .serve("127.0.0.1:0")
                .expect("bind loopback");
            let addr = server.local_addr().to_string();
            println!("started in-process server on {addr}");
            (addr, Some(server))
        }
    };

    let client = RemoteClient::connect(addr.as_str()).expect("server reachable");

    // A few clean requests (the tail-sampler keeps one in N of these) …
    for sample in 0..3u64 {
        let in_key = format!("tq/in{sample}");
        let out_key = format!("tq/out{sample}");
        client
            .put_tensor(&in_key, &demo_input(sample))
            .expect("put_tensor");
        client
            .run_model(DEMO_MODEL, &in_key, &out_key)
            .expect("run_model");
    }
    // … and one failing request, which the flight recorder always keeps.
    let err = client
        .run_model(DEMO_MODEL, "tq/never-stored", "tq/failed-out")
        .expect_err("missing input must fail");
    println!("deliberate failure retained for the recorder: {err}");

    // The merged dump: the client's half of each trace stitched to the
    // half the server recorded, joined by trace id.
    let traces = client.trace_dump().expect("trace_dump");
    println!("trace_dump returned {} retained trace(s)", traces.len());
    let mut cross_process = 0usize;
    for trace in &traces {
        let client_side = trace.spans.iter().any(|s| s.service == "remote_client");
        let server_side = trace.spans.iter().any(|s| s.service == "orchestrator");
        println!(
            "\ntrace {} tags={:?} spans={} ({:.3} ms)",
            trace.trace_id,
            trace.tags,
            trace.spans.len(),
            trace.duration().as_secs_f64() * 1e3,
        );
        print_subtree(trace, None, 2);
        if client_side && server_side {
            cross_process += 1;
            println!(
                "  => cross-process trace {}: client and server spans share one tree",
                trace.trace_id
            );
        }
    }
    assert!(
        cross_process > 0,
        "no trace stitched across the wire — context propagation is broken"
    );
    println!("\n{cross_process} trace(s) span both sides of the wire");

    if let Some(server) = local_server {
        server.shutdown();
    }
}
