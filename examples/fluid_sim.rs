//! Fluid simulation: replace the SPH `NS_equation` step of fluidanimate
//! (paper §2.1's motivating workload) and compare Auto-HPCnet against the
//! loop-perforation baseline on the same quality bound.
//!
//! ```text
//! cargo run --release -p auto-hpcnet --example fluid_sim
//! ```

use auto_hpcnet::config::PipelineConfig;
use auto_hpcnet::evaluate::evaluate_predictor;
use auto_hpcnet::pipeline::AutoHpcnet;
use hpcnet_approx::tune_skip_rate;
use hpcnet_apps::{FluidApp, HpcApp};

fn main() {
    let app = FluidApp::default();
    let mu = 0.10;
    println!(
        "application: {} — region `{}`, QoI `{}` (mu = {:.0}%)",
        app.name(),
        app.region_name(),
        app.qoi_name(),
        100.0 * mu
    );

    // --- Auto-HPCnet surrogate ---
    println!("\nbuilding the NN surrogate ...");
    let framework = AutoHpcnet::new(PipelineConfig::quick());
    let surrogate = framework.build_surrogate(&app).expect("pipeline succeeds");
    let nn_eval = evaluate_predictor(&app, |x| surrogate.predict(x), 50, mu);
    println!(
        "Auto-HPCnet: speedup {:.2}x, hit-rate {:.1}%, topology {:?}",
        nn_eval.speedup,
        100.0 * nn_eval.hit_rate,
        surrogate.topology.widths
    );

    // --- HPAC-style loop perforation on the same region ---
    println!("\ntuning loop perforation ...");
    let tuned = tune_skip_rate(&app, mu, 6, 9_000);
    println!(
        "perforation: skip rate {:.0}% (flop reduction {:.2}x on calibration)",
        100.0 * tuned.skip,
        tuned.flop_reduction
    );
    let perf_eval = evaluate_predictor(
        &app,
        |x| {
            if tuned.skip == 0.0 {
                Some(app.run_region_exact(x))
            } else {
                app.run_region_perforated(x, tuned.skip).map(|(y, _)| y)
            }
        },
        50,
        mu,
    );
    println!(
        "perforation: speedup {:.2}x, hit-rate {:.1}%",
        perf_eval.speedup,
        100.0 * perf_eval.hit_rate
    );

    println!(
        "\nNN surrogate vs perforation: {:.2}x vs {:.2}x — the approximation\n\
         granularity of perforation is limited to iteration skipping, while\n\
         the surrogate replaces the whole O(N^2 * steps) kernel (paper §7.2).",
        nn_eval.speedup, perf_eval.speedup
    );
}
