//! Cluster quickstart: Listing 1 against a sharded serving fleet.
//!
//! The deployment flow is written once against
//! [`hpcnet_runtime::ClientApi`] and driven through a [`ClusterClient`] —
//! the same code runs unchanged against the in-process client or a
//! single `RemoteClient` (see `examples/remote_quickstart.rs`).
//!
//! Two modes:
//!
//! * default — self-contained: starts three [`NetServer`]s with the demo
//!   model on ephemeral loopback ports, shards across them, drains them;
//! * `HPCNET_CLUSTER_ADDRS=host:port,host:port,...` — connects to an
//!   already-running fleet of `hpcnet-serve --demo` endpoints (see the
//!   README's "Cluster serving" section).
//!
//! Either way, every output is bit-compared against a locally
//! constructed copy of the same deterministic demo model.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use hpcnet_cluster::ClusterClient;
use hpcnet_net::{demo_bundle, demo_input, NetServer, DEMO_MODEL};
use hpcnet_runtime::{ClientApi, Orchestrator, TensorStore};

/// The Listing-1 flow, transport-agnostic: put, run, unpack, clean up.
fn invoke_surrogate<C: ClientApi>(client: &C, sample: u64) -> Vec<f64> {
    let input = demo_input(sample);
    let in_key = format!("{{cq{sample}}}/in");
    // Hash-tagged keys: `{cq0}/in` and `{cq0}/out` co-locate on the same
    // replica set, so the cluster never has to relocate the output.
    let out_key = format!("{{cq{sample}}}/out");
    client.put_tensor(&in_key, &input).expect("put_tensor");
    client
        .run_model(DEMO_MODEL, &in_key, &out_key)
        .expect("run_model");
    let output = client.unpack_tensor(&out_key).expect("unpack_tensor");
    client.del_tensor(&in_key).expect("del_tensor");
    client.del_tensor(&out_key).expect("del_tensor");
    output
}

fn main() {
    // A local copy of the same deterministic demo model is the oracle.
    let reference = demo_bundle();

    let (addrs, local_servers) = match std::env::var("HPCNET_CLUSTER_ADDRS") {
        Ok(list) => {
            let addrs: Vec<String> = list
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_string)
                .collect();
            println!("connecting to external fleet: {addrs:?}");
            (addrs, Vec::new())
        }
        Err(_) => {
            let servers: Vec<NetServer> = (0..3)
                .map(|_| {
                    let orchestrator = Orchestrator::builder().store(TensorStore::new()).build();
                    orchestrator.register_model(DEMO_MODEL, demo_bundle());
                    NetServer::builder(orchestrator)
                        .serve("127.0.0.1:0")
                        .expect("bind loopback")
                })
                .collect();
            let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
            println!("started in-process fleet on {addrs:?}");
            (addrs, servers)
        }
    };

    let client = ClusterClient::builder(addrs)
        .replication(2)
        .connect()
        .expect("fleet reachable");

    // Per-sample requests, sharded by key across the fleet.
    for sample in 0..6 {
        let routed = invoke_surrogate(&client, sample);
        let direct = reference
            .surrogate
            .predict(&demo_input(sample))
            .expect("local predict");
        assert_eq!(routed.len(), direct.len());
        for (r, d) in routed.iter().zip(&direct) {
            assert_eq!(
                r.to_bits(),
                d.to_bits(),
                "cluster output differs from local forward pass"
            );
        }
        println!(
            "sample {sample}: cluster output {:?} bit-matches local forward pass",
            &routed[..routed.len().min(4)]
        );
    }

    // Scatter/gather: one batch call fans out per-shard sub-batches.
    let keys: Vec<(String, String)> = (0..8u64)
        .map(|s| {
            let in_key = format!("cqb/in{s}");
            client.put_tensor(&in_key, &demo_input(s)).expect("put");
            (in_key, format!("cqb/out{s}"))
        })
        .collect();
    let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
    client
        .run_model_batch(DEMO_MODEL, &pairs)
        .expect("scatter/gather batch");
    println!("scatter/gather batch of {} served", pairs.len());

    // Fleet rollup: merged stats plus the client's own routing metrics.
    let stats = client.serving_stats().expect("stats");
    println!(
        "fleet rollup: {} request(s), {} batch(es), {} error(s) across {} endpoint(s)",
        stats.requests,
        stats.batches,
        stats.errors,
        client.endpoint_addrs().len()
    );
    for line in client
        .metrics_text()
        .expect("metrics")
        .lines()
        .filter(|l| l.starts_with("hpcnet_cluster_") && !l.starts_with("# "))
        .take(10)
    {
        println!("  {line}");
    }

    // One deliberately failing request: flight recorders on both sides of
    // the wire always retain errored traces, so the cross-process stitch
    // below is deterministic even against a warm, long-running fleet.
    let err = client
        .run_model(DEMO_MODEL, "{cqt}/never-stored", "{cqt}/out")
        .expect_err("missing input must fail");
    println!("deliberate failure retained for the recorder: {err}");
    let traces = client.trace_dump().expect("trace_dump");
    let cross_process = traces
        .iter()
        .filter(|t| {
            t.spans.iter().any(|s| s.service == "cluster")
                && t.spans.iter().any(|s| s.service == "orchestrator")
        })
        .count();
    println!(
        "trace_dump: {} retained trace(s), {cross_process} cross-process trace(s) \
         stitching fleet client and server spans",
        traces.len()
    );
    assert!(
        cross_process > 0,
        "no trace stitched across the wire — context propagation is broken"
    );

    for server in local_servers {
        let stats = server.shutdown();
        println!(
            "endpoint drained: {} request(s), {} batch(es), {} error(s)",
            stats.requests, stats.batches, stats.errors
        );
    }
}
