//! Remote quickstart: Listing 1 over TCP.
//!
//! The deployment flow is written once against
//! [`hpcnet_runtime::ClientApi`] and driven through a [`RemoteClient`] —
//! the same code runs unchanged against the in-process client.
//!
//! Two modes:
//!
//! * default — self-contained: starts a [`NetServer`] with the demo
//!   model on an ephemeral loopback port, talks to it, drains it;
//! * `HPCNET_ADDR=host:port` — connects to an already-running
//!   `hpcnet-serve --demo` (see the README's "Remote serving" section).
//!
//! Either way, every remote output is bit-compared against a locally
//! constructed copy of the same deterministic demo model.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use hpcnet_net::{demo_bundle, demo_input, NetServer, RemoteClient, DEMO_MODEL};
use hpcnet_runtime::{ClientApi, Orchestrator, TensorStore};

/// The Listing-1 flow, transport-agnostic: put, run, unpack, clean up.
fn invoke_surrogate<C: ClientApi>(client: &C, sample: u64) -> Vec<f64> {
    let input = demo_input(sample);
    let in_key = format!("rq/in{sample}");
    let out_key = format!("rq/out{sample}");
    client.put_tensor(&in_key, &input).expect("put_tensor");
    client
        .run_model(DEMO_MODEL, &in_key, &out_key)
        .expect("run_model");
    let output = client.unpack_tensor(&out_key).expect("unpack_tensor");
    client.del_tensor(&in_key).expect("del_tensor");
    client.del_tensor(&out_key).expect("del_tensor");
    output
}

fn main() {
    // A local copy of the same deterministic demo model is the oracle.
    let reference = demo_bundle();

    let (addr, local_server) = match std::env::var("HPCNET_ADDR") {
        Ok(addr) => {
            println!("connecting to external server at {addr}");
            (addr, None)
        }
        Err(_) => {
            let orchestrator = Orchestrator::builder().store(TensorStore::new()).build();
            orchestrator.register_model(DEMO_MODEL, demo_bundle());
            let server = NetServer::builder(orchestrator)
                .serve("127.0.0.1:0")
                .expect("bind loopback");
            let addr = server.local_addr().to_string();
            println!("started in-process server on {addr}");
            (addr, Some(server))
        }
    };

    let client = RemoteClient::connect(addr.as_str()).expect("server reachable");
    for sample in 0..4 {
        let remote = invoke_surrogate(&client, sample);
        let direct = reference
            .surrogate
            .predict(&demo_input(sample))
            .expect("local predict");
        assert_eq!(remote.len(), direct.len());
        for (r, d) in remote.iter().zip(&direct) {
            assert_eq!(
                r.to_bits(),
                d.to_bits(),
                "remote output differs from local forward pass"
            );
        }
        println!(
            "sample {sample}: remote output {:?} bit-matches local forward pass",
            &remote[..remote.len().min(4)]
        );
    }

    let stats = client.serving_stats().expect("stats");
    println!(
        "server stats: {} request(s), {} batch(es), {} error(s)",
        stats.requests, stats.batches, stats.errors
    );
    for line in client
        .metrics_text()
        .expect("metrics")
        .lines()
        .filter(|l| l.starts_with("hpcnet_net_") && !l.contains("_bucket"))
        .take(8)
    {
        println!("  {line}");
    }

    if let Some(server) = local_server {
        let stats = server.shutdown();
        println!(
            "drained: {} request(s), {} batch(es), {} error(s)",
            stats.requests, stats.batches, stats.errors
        );
    }
}
