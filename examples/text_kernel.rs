//! Text-annotated kernel: write the region as plain text (the analog of
//! the paper's two source directives), and let the framework do the rest —
//! parse, trace, identify I/O, sample, search, deploy.
//!
//! ```text
//! cargo run --release -p auto-hpcnet --example text_kernel
//! ```

use auto_hpcnet::config::PipelineConfig;
use auto_hpcnet::pipeline::AutoHpcnet;
use hpcnet_trace::{parse_program, Interpreter, PerturbSpec};

/// A damped-oscillator integrator: the region advances the state (x, v)
/// through `steps` explicit-Euler steps; the post-region code consumes
/// the final position.
const KERNEL: &str = r#"
    # integrate a damped harmonic oscillator
    region {
        for t in 0..steps {
            a = 0.0 - k * x - c * v
            v = v + dt * a
            x = x + dt * v
        }
    }
    post {
        final_position = x
    }
    live_out final_position, x, v
"#;

fn main() {
    let program = parse_program(KERNEL).expect("kernel parses");
    let setup = |it: &mut Interpreter| {
        it.set_scalar("steps", 50.0);
        it.set_scalar("dt", 0.02);
        it.set_scalar("k", 4.0);
        it.set_scalar("c", 0.4);
        it.set_scalar("x", 1.0);
        it.set_scalar("v", 0.0);
    };

    let mut cfg = PipelineConfig::quick();
    cfg.mu = 0.10;
    cfg.search.k_bounds = (2, 6);
    let framework = AutoHpcnet::new(cfg);
    println!("building a surrogate for the text kernel ...");
    let (surrogate, signature) = framework
        .build_surrogate_from_ir(
            &program,
            setup,
            PerturbSpec {
                mean: 0.0,
                std: 0.08,
            },
            &["steps", "dt"], // never perturb discretization knobs
        )
        .expect("pipeline succeeds");

    println!("identified signature:");
    for f in &signature.inputs {
        println!("  input  {}", f.name);
    }
    for f in &signature.outputs {
        println!("  output {}", f.name);
    }
    println!(
        "selected K = {} of {}, topology {:?}, f_e = {:.4}",
        surrogate.k,
        signature.input_width(),
        surrogate.topology.widths,
        surrogate.f_e
    );

    // Sanity: compare the surrogate against the real integrator on a
    // fresh input ordering follows the signature (sorted by name).
    let mut it = Interpreter::new();
    setup(&mut it);
    it.set_scalar("x", 0.8);
    it.set_scalar("v", 0.3);
    let raw: Vec<f64> = signature
        .inputs
        .iter()
        .map(|f| it.scalar(&f.name).expect("scalar input"))
        .collect();
    it.run(&program).expect("exact run");
    let exact: Vec<f64> = signature
        .outputs
        .iter()
        .map(|f| it.scalar(&f.name).expect("scalar output"))
        .collect();
    let predicted = surrogate.predict(&raw).expect("surrogate runs");
    println!("\n{:<16} {:>12} {:>12}", "output", "exact", "surrogate");
    for ((f, e), p) in signature.outputs.iter().zip(&exact).zip(&predicted) {
        println!("{:<16} {:>12.5} {:>12.5}", f.name, e, p);
    }

    // Deploy and serve one request under a per-request deadline, then
    // drain the worker pool gracefully.
    let orc = hpcnet_runtime::Orchestrator::builder()
        .store(hpcnet_runtime::TensorStore::new())
        .build();
    surrogate.deploy(&orc, "oscillator-net");
    let client = orc.client();
    client.put_tensor("osc_in", &raw).expect("valid key");
    client
        .run_model_with_deadline(
            "oscillator-net",
            "osc_in",
            "osc_out",
            std::time::Duration::from_secs(1),
        )
        .expect("inference within the deadline");
    let served = client.unpack_tensor("osc_out").expect("output present");
    assert_eq!(served, predicted);
    let stats = orc.shutdown();
    println!(
        "\nserved through the orchestrator under a 1s deadline ({} request, {} deadline miss)",
        stats.requests, stats.deadline_expired
    );
}
