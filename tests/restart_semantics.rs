//! Restart-on-quality-miss semantics (paper §7.1): "when running a
//! specific input problem using the surrogate model leads to the final
//! output failing to meet the quality requirement, the application has to
//! restart and use the original code."

use auto_hpcnet::config::PipelineConfig;
use auto_hpcnet::evaluate::evaluate;
use auto_hpcnet::pipeline::AutoHpcnet;
use hpcnet_apps::BlackscholesApp;

/// With restart enabled, every quality miss costs an extra solver run;
/// with a tight-enough μ some misses occur, and the restart count must
/// equal the number of misses.
#[test]
fn restarts_match_misses_and_cost_time() {
    let app = BlackscholesApp;
    let framework = AutoHpcnet::new(PipelineConfig::quick());
    let surrogate = framework.build_surrogate(&app).unwrap();

    // Evaluate at a very tight tolerance to force some misses.
    let strict_mu = 1e-5;
    let no_restart = evaluate(&app, &surrogate, 30, strict_mu, false).unwrap();
    let with_restart = evaluate(&app, &surrogate, 30, strict_mu, true).unwrap();

    let misses = (30.0 * (1.0 - no_restart.hit_rate)).round() as usize;
    assert!(
        misses > 0,
        "tight mu should produce misses (hit rate {})",
        no_restart.hit_rate
    );
    assert_eq!(with_restart.restarts, misses, "every miss restarts");
    assert_eq!(no_restart.restarts, 0);
    // Restarting costs inference-path time.
    assert!(with_restart.t_infer > no_restart.t_infer);
    assert!(with_restart.speedup <= no_restart.speedup * 1.05);
}

/// At the paper's μ = 10 % the surrogate passes and restarts stay rare.
#[test]
fn paper_mu_keeps_restarts_rare() {
    let app = BlackscholesApp;
    let framework = AutoHpcnet::new(PipelineConfig::quick());
    let surrogate = framework.build_surrogate(&app).unwrap();
    let eval = evaluate(&app, &surrogate, 30, 0.10, true).unwrap();
    assert!(eval.hit_rate >= 0.9, "hit rate {}", eval.hit_rate);
    assert!(eval.restarts <= 3);
}
