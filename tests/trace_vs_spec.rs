//! Cross-validation of the compiler-based feature acquisition against the
//! applications' declared region signatures: for kernels we can express in
//! the mini-IR, the trace-identified inputs/outputs must match what the
//! Rust-native application declares.

use hpcnet_trace::{identify, kernels, Dddg, FeatureKind, Interpreter, Phase};
use std::collections::HashMap;

fn run_kernel(k: &kernels::IrKernel) -> (hpcnet_trace::RegionSignature, Dddg) {
    let mut it = Interpreter::new();
    (k.setup)(&mut it);
    let trace = it.run(&k.program).unwrap();
    let mut sizes = HashMap::new();
    for rec in &trace.records {
        for loc in rec.reads.iter().chain(rec.write.iter()) {
            if let hpcnet_trace::Location::Elem(name, _) = loc {
                if let Some(arr) = it.array(name) {
                    sizes.insert(name.clone(), arr.len());
                }
            }
        }
    }
    let region: Vec<_> = trace.phase(Phase::Region).cloned().collect();
    (
        identify(&trace, &k.program.live_out, &sizes),
        Dddg::build(&region),
    )
}

/// The PCG IR kernel corresponds to the paper's Algorithm 1 region. Its
/// identified signature must match the region contract of a PCG solver:
/// inputs {A, p, r, x}, outputs containing the updated solution x.
#[test]
fn pcg_ir_signature_matches_solver_contract() {
    let k = kernels::pcg_iteration(4);
    let (sig, dddg) = run_kernel(&k);
    let inputs: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(inputs, vec!["A", "p", "r", "x"]);
    assert!(sig.outputs.iter().any(|f| f.name == "x"));
    // Width matches the dense system layout n=4: A 16, p/r/x 4 each.
    assert_eq!(sig.input_width(), 28);
    // The matrix groups into a single array feature (paper §3.1 First).
    let a = sig.inputs.iter().find(|f| f.name == "A").unwrap();
    assert_eq!(a.kind, FeatureKind::Array(16));
    // DDDG roots agree with the identified inputs at variable granularity.
    assert_eq!(dddg.root_input_vars(), vec!["A", "p", "r", "x"]);
}

/// The Black–Scholes IR kernel has the same input/output arity as the
/// native `BlackscholesApp` region per option: 5 scalars in, price out.
#[test]
fn blackscholes_ir_matches_native_region_arity() {
    let k = kernels::blackscholes_like();
    let (sig, _) = run_kernel(&k);
    assert_eq!(sig.input_width(), 5, "5 pricing inputs per option");
    assert_eq!(sig.output_width(), 1, "one price out");
    // Native app: a portfolio of options with the same per-option arity
    // (5 pricing fields in, call+put out).
    use hpcnet_apps::HpcApp;
    let app = hpcnet_apps::BlackscholesApp;
    let portfolio = app.input_dim() / sig.input_width();
    assert_eq!(app.input_dim(), portfolio * sig.input_width());
    assert_eq!(app.output_dim(), portfolio * 2);
}

/// The Jacobi smoother is the MG building block: its identified signature
/// (read u, f, w; write unew) is the smoother contract.
#[test]
fn jacobi_ir_signature_is_the_smoother_contract() {
    let k = kernels::jacobi_smoother(16);
    let (sig, _) = run_kernel(&k);
    let inputs: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(inputs, vec!["f", "u", "w"]);
    let outputs: Vec<&str> = sig.outputs.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(outputs, vec!["unew"]);
}

/// Loop compression must not change any identified signature.
#[test]
fn compression_invariant_signatures() {
    for k in [
        kernels::saxpy(8),
        kernels::pcg_iteration(4),
        kernels::jacobi_smoother(16),
    ] {
        let plain = {
            let mut it = Interpreter::new();
            (k.setup)(&mut it);
            let trace = it.run(&k.program).unwrap();
            let mut sizes = HashMap::new();
            for rec in &trace.records {
                for loc in rec.reads.iter().chain(rec.write.iter()) {
                    if let hpcnet_trace::Location::Elem(name, _) = loc {
                        if let Some(arr) = it.array(name) {
                            sizes.insert(name.clone(), arr.len());
                        }
                    }
                }
            }
            identify(&trace, &k.program.live_out, &sizes)
        };
        let compressed = {
            let mut it = Interpreter::new();
            it.compress_loops = true;
            (k.setup)(&mut it);
            let trace = it.run(&k.program).unwrap();
            let mut sizes = HashMap::new();
            for rec in &trace.records {
                for loc in rec.reads.iter().chain(rec.write.iter()) {
                    if let hpcnet_trace::Location::Elem(name, _) = loc {
                        if let Some(arr) = it.array(name) {
                            sizes.insert(name.clone(), arr.len());
                        }
                    }
                }
            }
            identify(&trace, &k.program.live_out, &sizes)
        };
        assert_eq!(plain, compressed, "kernel {}", k.name);
    }
}
