//! Cross-crate integration tests: the full Auto-HPCnet workflow from
//! feature acquisition through deployment and evaluation.

use auto_hpcnet::acquisition::acquire;
use auto_hpcnet::config::PipelineConfig;
use auto_hpcnet::evaluate::{evaluate, evaluate_predictor};
use auto_hpcnet::pipeline::AutoHpcnet;
use hpcnet_apps::{BlackscholesApp, HpcApp, MiniQmcApp, StreamclusterApp};
use hpcnet_nas::{NasTask, TwoDNas};
use hpcnet_runtime::{Orchestrator, TensorStore};
use hpcnet_tensor::Matrix;
use hpcnet_trace::{kernels, PerturbSpec};

/// The complete paper workflow on a mini-IR kernel: trace → DDDG →
/// identify → samples → 2D NAS → deploy → serve.
#[test]
fn ir_kernel_full_workflow() {
    // 1-2. Acquisition on the Black-Scholes-like IR kernel.
    let k = kernels::blackscholes_like();
    let data = acquire(
        &k.program,
        k.setup,
        160,
        PerturbSpec {
            mean: 0.0,
            std: 0.1,
        },
        &[],
        42,
    )
    .unwrap();
    assert_eq!(data.signature.input_width(), 5);
    assert_eq!(data.signature.output_width(), 1);

    // 3. NAS over the acquired samples.
    let x = Matrix::from_rows(&data.samples.inputs).unwrap();
    let y = Matrix::from_rows(&data.samples.outputs).unwrap();
    let task = NasTask {
        quality: Box::new(NasTask::holdout_quality(x.clone(), y.clone(), 30)),
        inputs: x.clone(),
        sparse_inputs: None,
        outputs: y,
    };
    let mut search = hpcnet_nas::SearchConfig::default();
    search.outer_budget = 2;
    search.inner_budget = 3;
    search.bayesian_init = 2;
    search.quality_loss = 0.25;
    search.k_bounds = (2, 5);
    let mut model = hpcnet_nas::ModelConfig::default();
    model.train.epochs = 80;
    model.ae_epochs = 40;
    let outcome = TwoDNas::new(search, model).search(&task).unwrap();
    assert!(outcome.f_e <= 0.25, "f_e = {}", outcome.f_e);

    // 4. Deploy through the orchestrator and serve an inference.
    let orc = Orchestrator::builder().store(TensorStore::new()).build();
    orc.register_model(
        "ir-net",
        hpcnet_runtime::ModelBundle {
            surrogate: outcome.surrogate,
            autoencoder: outcome.autoencoder,
            scaler: Some(outcome.scaler),
            output_scaler: Some(outcome.output_scaler),
        },
    );
    let client = orc.client();
    client.put_tensor("in", x.row(0)).unwrap();
    client.run_model("ir-net", "in", "out").unwrap();
    assert_eq!(client.unpack_tensor("out").unwrap().len(), 1);
}

/// Native-application path: build, deploy, evaluate — quality must hold.
#[test]
fn blackscholes_pipeline_meets_quality() {
    let app = BlackscholesApp;
    let framework = AutoHpcnet::new(PipelineConfig::quick());
    let surrogate = framework.build_surrogate(&app).unwrap();
    let eval = evaluate(&app, &surrogate, 40, 0.10, false).unwrap();
    assert!(eval.hit_rate >= 0.9, "hit rate {}", eval.hit_rate);
    assert!(eval.t_infer > 0.0 && eval.t_solver > 0.0);
    assert_eq!(eval.n_problems, 40);
}

/// The surrogate must be cheaper per inference than the region it
/// replaces for a compute-heavy app (FLOP-level check, no timing noise).
#[test]
fn surrogate_is_cheaper_than_the_region() {
    let app = StreamclusterApp::default();
    let mut cfg = PipelineConfig::quick();
    cfg.mu = 0.5; // clustering QoI is noisy; the check here is about cost
    cfg.model.train.epochs = 100;
    let framework = AutoHpcnet::new(cfg);
    let surrogate = framework.build_surrogate(&app).unwrap();
    let x = app.gen_problem(12345);
    let (_, region_flops) = app.run_region_counted(&x);
    assert!(
        (surrogate.f_c as u64) < region_flops,
        "surrogate {} FLOPs vs region {} FLOPs",
        surrogate.f_c,
        region_flops
    );
}

/// Serialization round trip: a deployed bundle survives the JSON
/// checkpoint format (save/share across applications, paper §6.1).
#[test]
fn bundle_checkpoint_roundtrip() {
    let app = MiniQmcApp::default();
    let mut cfg = PipelineConfig::quick();
    cfg.mu = 0.30;
    let framework = AutoHpcnet::new(cfg);
    let surrogate = framework.build_surrogate(&app).unwrap();
    let json = surrogate.bundle.to_json();
    let restored = hpcnet_runtime::ModelBundle::from_json(&json).unwrap();
    let x = app.gen_problem(777);
    let direct = surrogate.predict(&x).unwrap();
    let orc = Orchestrator::builder().store(TensorStore::new()).build();
    orc.register_model("qmc", restored);
    let client = orc.client();
    client.put_tensor("in", &x).unwrap();
    client.run_model("qmc", "in", "out").unwrap();
    let restored_out = client.unpack_tensor("out").unwrap();
    for (a, b) in restored_out.iter().zip(&direct) {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "restored {a} vs direct {b}"
        );
    }
}

/// Eqn 2/3 sanity: a predictor that is exactly the region gives
/// hit rate 1 and speedup near 1 (same work both sides).
#[test]
fn evaluation_identities() {
    let app = MiniQmcApp::default();
    let eval = evaluate_predictor(&app, |x| Some(app.run_region_exact(x)), 20, 0.10);
    assert_eq!(eval.hit_rate, 1.0);
    assert!(
        eval.speedup > 0.5 && eval.speedup < 2.0,
        "speedup {}",
        eval.speedup
    );
}

/// The CNN surrogate family (`-initModel cnn`, Table 1) works through the
/// whole pipeline on a field-structured region and deploys through the
/// orchestrator like any MLP bundle.
#[test]
fn cnn_family_pipeline_on_mg() {
    let app = hpcnet_apps::MgApp::new(8);
    let mut cfg = PipelineConfig::quick();
    cfg.model.family = hpcnet_nas::ModelFamily::Cnn;
    cfg.model.train.epochs = 80;
    cfg.mu = 0.25;
    let surrogate = AutoHpcnet::new(cfg).build_surrogate(&app).unwrap();
    assert_eq!(surrogate.bundle.surrogate.family(), "cnn");
    assert!(surrogate.f_e <= 0.25, "f_e = {}", surrogate.f_e);

    // Deploy: the orchestrator serves CNNs through the same bundle path.
    let orc = Orchestrator::builder().store(TensorStore::new()).build();
    orc.register_model_from_json("mg-cnn", &surrogate.bundle.to_json())
        .unwrap();
    let x = app.gen_problem(31337);
    let client = orc.client();
    client.put_tensor("in", &x).unwrap();
    client.run_model("mg-cnn", "in", "out").unwrap();
    let served = client.unpack_tensor("out").unwrap();
    let direct = surrogate.predict(&x).unwrap();
    for (a, b) in served.iter().zip(&direct) {
        assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
    }
}
